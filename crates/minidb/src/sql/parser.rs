//! Recursive-descent parser for the SQL subset.

use super::lexer::{promote_literal, tokenize, Token};
use crate::error::{DbError, DbResult};
use crate::expr::{CmpOp, ColumnRef, Expr};
use crate::plan::{
    AggFunc, IndexHint, SelectItem, SelectQuery, TableRef, TableSource, WithClause,
};
use crate::value::Value;

/// Parse a SQL string into a [`SelectQuery`].
pub fn parse(sql: &str) -> DbResult<SelectQuery> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let q = p.parse_query()?;
    p.eat_if(&Token::Semi);
    if p.pos != p.tokens.len() {
        return Err(DbError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Placeholder ordinals assigned left to right — token order equals
    /// render order, so `parse(render(q))` preserves `Expr::Param` indices.
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> DbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Token) -> DbResult<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {t:?}, got {got:?}")))
        }
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True iff the next token is the keyword `kw` (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected keyword {kw}, got {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!("expected identifier, got {other:?}"))),
        }
    }

    fn parse_query(&mut self) -> DbResult<SelectQuery> {
        let mut with = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.ident()?;
                self.expect_kw("AS")?;
                self.expect(&Token::LParen)?;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                with.push(WithClause { name, query: q });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_kw("FROM")?;
        let from = self.parse_from_list()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_column_ref()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(DbError::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectQuery {
            with,
            select,
            from,
            predicate,
            group_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> DbResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    fn parse_select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat_if(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate: IDENT '(' …
        if let (Some(Token::Ident(name)), Some(Token::LParen)) = (self.peek(), self.peek2()) {
            if let Some(mut func) = Self::agg_func(name) {
                self.pos += 2; // consume IDENT '('
                let distinct = self.eat_kw("DISTINCT");
                let column = if self.eat_if(&Token::Star) {
                    None
                } else {
                    Some(self.parse_column_ref()?)
                };
                if distinct {
                    if func != AggFunc::Count {
                        return Err(DbError::Parse(
                            "DISTINCT only supported in COUNT".into(),
                        ));
                    }
                    func = AggFunc::CountDistinct;
                }
                self.expect(&Token::RParen)?;
                let alias = self.parse_alias()?;
                return Ok(SelectItem::Aggregate {
                    func,
                    column,
                    alias,
                });
            }
        }
        let column = self.parse_column_ref()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Column { column, alias })
    }

    /// Optional `[AS] alias` — only when the next identifier is not a
    /// clause keyword.
    fn parse_alias(&mut self) -> DbResult<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        const CLAUSE_KWS: [&str; 10] = [
            "FROM", "WHERE", "GROUP", "LIMIT", "ON", "AND", "OR", "ORDER", "FORCE", "USE",
        ];
        if let Some(Token::Ident(s)) = self.peek() {
            if !CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn parse_from_list(&mut self) -> DbResult<Vec<TableRef>> {
        let mut out = Vec::new();
        loop {
            out.push(self.parse_table_ref()?);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn parse_table_ref(&mut self) -> DbResult<TableRef> {
        let (source, default_alias) = if self.eat_if(&Token::LParen) {
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            (TableSource::Derived(Box::new(q)), None)
        } else {
            let name = self.ident()?;
            (TableSource::Named(name.clone()), Some(name))
        };
        let alias = self.parse_alias()?;
        let alias = match (alias, default_alias) {
            (Some(a), _) => a,
            (None, Some(d)) => d,
            (None, None) => {
                return Err(DbError::Parse("derived table requires an alias".into()))
            }
        };
        // Index hints: FORCE INDEX (cols…) | USE INDEX ().
        let mut hint = IndexHint::None;
        if self.eat_kw("FORCE") {
            self.expect_kw("INDEX")?;
            self.expect(&Token::LParen)?;
            let mut cols = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            hint = IndexHint::Force(cols);
        } else if self.eat_kw("USE") {
            self.expect_kw("INDEX")?;
            self.expect(&Token::LParen)?;
            self.expect(&Token::RParen)?;
            hint = IndexHint::IgnoreAll;
        }
        Ok(TableRef {
            source,
            alias,
            hint,
        })
    }

    fn parse_column_ref(&mut self) -> DbResult<ColumnRef> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let col = self.ident()?;
            Ok(ColumnRef::qualified(first, col))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> DbResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> DbResult<Expr> {
        let mut e = self.parse_and()?;
        while self.eat_kw("OR") {
            let rhs = self.parse_and()?;
            e = Expr::or(e, rhs);
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> DbResult<Expr> {
        let mut e = self.parse_not()?;
        while self.eat_kw("AND") {
            let rhs = self.parse_not()?;
            e = Expr::and(e, rhs);
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_predicate()
        }
    }

    /// A predicate: an operand optionally followed by a comparison tail.
    fn parse_predicate(&mut self) -> DbResult<Expr> {
        // Parenthesized boolean expression vs. scalar subquery vs. operand
        // grouping: '(' SELECT → subquery operand; otherwise parse as a
        // boolean expression (which also covers parenthesized operands in
        // comparisons because an operand alone is a valid expression).
        if self.peek() == Some(&Token::LParen) && !self.next_is_select() {
            self.pos += 1;
            let e = self.parse_expr()?;
            self.expect(&Token::RParen)?;
            // Allow a comparison tail after a parenthesized operand, e.g.
            // `(a) = 3` — only if `e` is a scalar shape.
            if self.peek_cmp_op().is_some() {
                return self.parse_tail(e);
            }
            return Ok(e);
        }
        let operand = self.parse_operand()?;
        self.parse_tail(operand)
    }

    fn parse_tail(&mut self, operand: Expr) -> DbResult<Expr> {
        if let Some(op) = self.peek_cmp_op() {
            self.pos += 1;
            let rhs = self.parse_operand()?;
            return Ok(Expr::Cmp {
                op,
                lhs: Box::new(operand),
                rhs: Box::new(rhs),
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let low = self.parse_operand()?;
            self.expect_kw("AND")?;
            let high = self.parse_operand()?;
            return Ok(Expr::Between {
                expr: Box::new(operand),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    list.push(self.parse_operand()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(operand),
                list,
                negated,
            });
        }
        if negated {
            return Err(DbError::Parse(
                "NOT must be followed by BETWEEN or IN here".into(),
            ));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(operand),
                negated,
            });
        }
        // Bare operand used as a boolean (e.g. a UDF call or TRUE).
        Ok(operand)
    }

    fn peek_cmp_op(&self) -> Option<CmpOp> {
        match self.peek()? {
            Token::Eq => Some(CmpOp::Eq),
            Token::Ne => Some(CmpOp::Ne),
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            _ => None,
        }
    }

    fn next_is_select(&self) -> bool {
        matches!(
            (self.peek(), self.peek2()),
            (Some(Token::LParen), Some(Token::Ident(s)))
                if s.eq_ignore_ascii_case("SELECT") || s.eq_ignore_ascii_case("WITH")
        )
    }

    fn parse_operand(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(n)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Double(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(promote_literal(&s)))
            }
            Some(Token::Question) => {
                self.pos += 1;
                let ord = self.params;
                self.params += 1;
                Ok(Expr::Param(ord))
            }
            Some(Token::LParen) => {
                if self.next_is_select() {
                    self.pos += 1;
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    self.pos += 1;
                    let e = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Ident(name)) => {
                // Keyword literals.
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                // TIME '…' / DATE '…' literals.
                if name.eq_ignore_ascii_case("TIME") {
                    if let Some(Token::Str(s)) = self.peek2() {
                        let t = Value::parse_time(s)
                            .ok_or_else(|| DbError::Parse(format!("bad TIME literal '{s}'")))?;
                        self.pos += 2;
                        return Ok(Expr::Literal(Value::Time(t)));
                    }
                }
                if name.eq_ignore_ascii_case("DATE") {
                    if let Some(Token::Str(s)) = self.peek2() {
                        let d = Value::parse_date(s)
                            .ok_or_else(|| DbError::Parse(format!("bad DATE literal '{s}'")))?;
                        self.pos += 2;
                        return Ok(Expr::Literal(Value::Date(d)));
                    }
                }
                // DOUBLE '…' literals: the renderer emits this spelling
                // only for non-finite doubles, which have no SQL value —
                // reject those with a defined error instead of misparsing
                // bare NaN/inf text as a column reference.
                if name.eq_ignore_ascii_case("DOUBLE") {
                    if let Some(Token::Str(s)) = self.peek2() {
                        let d: f64 = s.trim().parse().map_err(|_| {
                            DbError::Parse(format!("bad DOUBLE literal '{s}'"))
                        })?;
                        if !d.is_finite() {
                            return Err(DbError::Parse(format!(
                                "non-finite DOUBLE literal '{s}' has no SQL value"
                            )));
                        }
                        self.pos += 2;
                        return Ok(Expr::Literal(Value::Double(d)));
                    }
                }
                // UDF call: IDENT '(' args ')' for non-aggregate names.
                if self.peek2() == Some(&Token::LParen) && Self::agg_func(&name).is_none() {
                    self.pos += 2;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_operand()?);
                            if !self.eat_if(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Udf { name, args });
                }
                let col = self.parse_column_ref()?;
                Ok(Expr::Column(col))
            }
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q2_shape() {
        let q = parse(
            "SELECT * FROM wifi_dataset AS w \
             WHERE w.owner IN (1, 2, 3) AND w.ts_time BETWEEN '09:00' AND '17:00'",
        )
        .unwrap();
        assert_eq!(q.from[0].alias, "w");
        let conj = q.predicate.unwrap();
        assert_eq!(conj.conjuncts().len(), 2);
    }

    #[test]
    fn parses_join_and_group_by() {
        let q = parse(
            "SELECT w.owner, COUNT(*) n FROM wifi_dataset w, user_group_membership ug \
             WHERE ug.user_group_id = 5 AND ug.user_id = w.owner GROUP BY w.owner",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.group_by.len(), 1);
        assert!(q.has_aggregates());
    }

    #[test]
    fn parses_nested_parens_precedence() {
        let q = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter: OR(a=1, AND(b=2, c=3)).
        match q.predicate.unwrap() {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::And(_)));
            }
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_or_inside_and() {
        let q = parse("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        match q.predicate.unwrap() {
            Expr::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::Or(_)));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parses_scalar_subquery() {
        let q = parse(
            "SELECT * FROM wifi_dataset w WHERE w.wifi_ap = \
             (SELECT w2.wifi_ap FROM wifi_dataset w2 WHERE w2.owner = 99 LIMIT 1)",
        )
        .unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { rhs, .. } => assert!(matches!(*rhs, Expr::ScalarSubquery(_))),
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn parses_not_in_and_is_null() {
        let q = parse("SELECT * FROM t WHERE a NOT IN (1, 2) AND b IS NOT NULL").unwrap();
        let pred = q.predicate.unwrap();
        let conjs = pred.conjuncts();
        assert!(matches!(conjs[0], Expr::InList { negated: true, .. }));
        assert!(matches!(conjs[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parses_use_index_hint() {
        let q = parse("SELECT * FROM t USE INDEX () WHERE a = 1").unwrap();
        assert_eq!(q.from[0].hint, IndexHint::IgnoreAll);
    }

    #[test]
    fn parses_udf_equals_true() {
        let q = parse("SELECT * FROM t WHERE delta(3, 'Bob', 'Analytics', owner) = TRUE").unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { lhs, .. } => assert!(matches!(*lhs, Expr::Udf { .. })),
            other => panic!("expected cmp, got {other:?}"),
        }
    }

    #[test]
    fn parses_typed_literals() {
        let q = parse("SELECT * FROM t WHERE a = TIME '09:15' AND b = DATE '2020-01-01'").unwrap();
        let pred = q.predicate.unwrap();
        let conjs = pred.conjuncts();
        assert!(
            matches!(conjs[0], Expr::Cmp { ref rhs, .. } if matches!(**rhs, Expr::Literal(Value::Time(_))))
        );
    }

    #[test]
    fn parses_count_distinct_star() {
        let q = parse("SELECT COUNT(DISTINCT *) AS n FROM t").unwrap();
        assert!(matches!(
            q.select[0],
            SelectItem::Aggregate {
                func: AggFunc::CountDistinct,
                column: None,
                ..
            }
        ));
        assert!(parse("SELECT SUM(DISTINCT a) FROM t").is_err());
    }

    #[test]
    fn parses_double_literal_and_rejects_non_finite() {
        let q = parse("SELECT * FROM t WHERE a = DOUBLE '1.5'").unwrap();
        match q.predicate.unwrap() {
            Expr::Cmp { rhs, .. } => {
                assert_eq!(*rhs, Expr::Literal(Value::Double(1.5)))
            }
            other => panic!("expected cmp, got {other:?}"),
        }
        for bad in ["NaN", "inf", "-inf"] {
            let err = parse(&format!("SELECT * FROM t WHERE a = DOUBLE '{bad}'"))
                .unwrap_err();
            assert!(
                err.to_string().contains("non-finite"),
                "expected defined non-finite error, got {err}"
            );
        }
    }

    #[test]
    fn parses_placeholders_with_ordinals_in_text_order() {
        let q = parse("SELECT * FROM t WHERE a = ? AND b IN (?, ?) OR c BETWEEN ? AND ?")
            .unwrap();
        let mut ords = Vec::new();
        fn collect(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Param(i) => out.push(*i),
                Expr::Cmp { lhs, rhs, .. } => {
                    collect(lhs, out);
                    collect(rhs, out);
                }
                Expr::Between {
                    expr, low, high, ..
                } => {
                    collect(expr, out);
                    collect(low, out);
                    collect(high, out);
                }
                Expr::InList { expr, list, .. } => {
                    collect(expr, out);
                    for e in list {
                        collect(e, out);
                    }
                }
                Expr::And(v) | Expr::Or(v) => {
                    for e in v {
                        collect(e, out);
                    }
                }
                _ => {}
            }
        }
        collect(&q.predicate.unwrap(), &mut ords);
        assert_eq!(ords, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT * FROM t WHERE a = 1 extra garbage ,").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT *").is_err());
    }

    #[test]
    fn parses_limit() {
        let q = parse("SELECT * FROM t LIMIT 10").unwrap();
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_derived_table() {
        let q = parse("SELECT COUNT(*) FROM (SELECT * FROM t WHERE a = 1) AS sub").unwrap();
        assert!(matches!(q.from[0].source, TableSource::Derived(_)));
        assert_eq!(q.from[0].alias, "sub");
    }
}
