//! Render query ASTs back to SQL text.
//!
//! The renderer produces text the parser accepts (`parse(render(q)) == q`
//! is property-tested), which lets the middleware log and ship the exact
//! rewritten SQL the way the paper's SIEVE implementation does.

use crate::expr::Expr;
use crate::plan::{IndexHint, SelectItem, SelectQuery, TableSource};
use crate::value::Value;
use std::fmt::Write;

/// Render a query to SQL text.
pub fn render_query(q: &SelectQuery) -> String {
    let mut s = String::new();
    write_query(&mut s, q);
    s
}

fn write_query(s: &mut String, q: &SelectQuery) {
    if !q.with.is_empty() {
        s.push_str("WITH ");
        for (i, wc) in q.with.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{} AS (", wc.name);
            write_query(s, &wc.query);
            s.push(')');
        }
        s.push(' ');
    }
    s.push_str("SELECT ");
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Star => s.push('*'),
            SelectItem::Column { column, alias } => {
                let _ = write!(s, "{column}");
                if let Some(a) = alias {
                    let _ = write!(s, " AS {a}");
                }
            }
            SelectItem::Aggregate {
                func,
                column,
                alias,
            } => {
                let _ = write!(s, "{}(", func.sql());
                match (func, column) {
                    (crate::plan::AggFunc::CountDistinct, Some(c)) => {
                        let _ = write!(s, "DISTINCT {c}");
                    }
                    (crate::plan::AggFunc::CountDistinct, None) => {
                        // Must keep the DISTINCT spelling: falling through
                        // to `COUNT(*)` would silently execute a different
                        // aggregate across the wire.
                        s.push_str("DISTINCT *");
                    }
                    (_, Some(c)) => {
                        let _ = write!(s, "{c}");
                    }
                    (_, None) => s.push('*'),
                }
                s.push(')');
                if let Some(a) = alias {
                    let _ = write!(s, " AS {a}");
                }
            }
        }
    }
    s.push_str(" FROM ");
    for (i, t) in q.from.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match &t.source {
            TableSource::Named(n) => {
                s.push_str(n);
                if t.alias != *n {
                    let _ = write!(s, " AS {}", t.alias);
                }
            }
            TableSource::Derived(inner) => {
                s.push('(');
                write_query(s, inner);
                let _ = write!(s, ") AS {}", t.alias);
            }
        }
        match &t.hint {
            IndexHint::None => {}
            IndexHint::Force(cols) => {
                let _ = write!(s, " FORCE INDEX ({})", cols.join(", "));
            }
            IndexHint::IgnoreAll => s.push_str(" USE INDEX ()"),
        }
    }
    if let Some(p) = &q.predicate {
        s.push_str(" WHERE ");
        write_expr(s, p, 0);
    }
    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        for (i, c) in q.group_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{c}");
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(s, " LIMIT {n}");
    }
}

/// Render an expression to SQL text.
pub fn render_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

/// Precedence levels: OR=1, AND=2, NOT=3, atoms=4. Parenthesize whenever a
/// child's level is at or below the parent's requirement.
fn write_expr(s: &mut String, e: &Expr, parent_level: u8) {
    let level = match e {
        Expr::Or(_) => 1,
        Expr::And(_) => 2,
        Expr::Not(_) => 3,
        _ => 4,
    };
    let need_parens = level < 4 && level <= parent_level;
    if need_parens {
        s.push('(');
    }
    match e {
        Expr::Literal(v) => write_value(s, v),
        Expr::Param(_) => s.push('?'),
        Expr::Column(c) => {
            let _ = write!(s, "{c}");
        }
        Expr::Cmp { op, lhs, rhs } => {
            write_expr(s, lhs, level);
            let _ = write!(s, " {} ", op.sql());
            write_expr(s, rhs, level);
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            write_expr(s, expr, level);
            s.push_str(if *negated { " NOT BETWEEN " } else { " BETWEEN " });
            write_expr(s, low, level);
            s.push_str(" AND ");
            write_expr(s, high, level);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            write_expr(s, expr, level);
            s.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, item, 0);
            }
            s.push(')');
        }
        Expr::IsNull { expr, negated } => {
            write_expr(s, expr, level);
            s.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::And(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    s.push_str(" AND ");
                }
                write_expr(s, p, level);
            }
        }
        Expr::Or(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    s.push_str(" OR ");
                }
                write_expr(s, p, level);
            }
        }
        Expr::Not(inner) => {
            s.push_str("NOT ");
            write_expr(s, inner, level);
        }
        Expr::Udf { name, args } => {
            let _ = write!(s, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, a, 0);
            }
            s.push(')');
        }
        Expr::ScalarSubquery(q) => {
            s.push('(');
            write_query(s, q);
            s.push(')');
        }
    }
    if need_parens {
        s.push(')');
    }
}

fn write_value(s: &mut String, v: &Value) {
    // `Value`'s Display already renders SQL-style literals.
    let _ = write!(s, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, ColumnRef};
    use crate::sql::parse;

    #[test]
    fn renders_precedence_correctly() {
        // (a=1 OR b=2) AND c=3 must keep its parens.
        let e = Expr::and(
            Expr::or(
                Expr::col_eq(ColumnRef::bare("a"), Value::Int(1)),
                Expr::col_eq(ColumnRef::bare("b"), Value::Int(2)),
            ),
            Expr::col_eq(ColumnRef::bare("c"), Value::Int(3)),
        );
        let text = render_expr(&e);
        assert_eq!(text, "(a = 1 OR b = 2) AND c = 3");
        let q = parse(&format!("SELECT * FROM t WHERE {text}")).unwrap();
        assert_eq!(q.predicate.unwrap(), e);
    }

    #[test]
    fn renders_or_of_ands_without_extra_parens() {
        let e = Expr::or(
            Expr::and(
                Expr::col_eq(ColumnRef::bare("a"), Value::Int(1)),
                Expr::col_eq(ColumnRef::bare("b"), Value::Int(2)),
            ),
            Expr::col_eq(ColumnRef::bare("c"), Value::Int(3)),
        );
        let text = render_expr(&e);
        let q = parse(&format!("SELECT * FROM t WHERE {text}")).unwrap();
        assert_eq!(q.predicate.unwrap(), e);
    }

    #[test]
    fn renders_typed_values() {
        let e = Expr::col_cmp(
            ColumnRef::bare("ts_time"),
            CmpOp::Ge,
            Value::Time(9 * 3600),
        );
        assert_eq!(render_expr(&e), "ts_time >= TIME '09:00:00'");
        let q = parse(&format!("SELECT * FROM t WHERE {}", render_expr(&e))).unwrap();
        assert_eq!(q.predicate.unwrap(), e);
    }

    #[test]
    fn all_aggregate_shapes_roundtrip() {
        use crate::plan::{AggFunc, SelectQuery, TableRef};
        let shapes: Vec<(AggFunc, Option<ColumnRef>)> = vec![
            (AggFunc::Count, None),
            (AggFunc::Count, Some(ColumnRef::bare("a"))),
            (AggFunc::CountDistinct, None),
            (AggFunc::CountDistinct, Some(ColumnRef::bare("a"))),
            (AggFunc::Sum, Some(ColumnRef::qualified("t", "a"))),
            (AggFunc::Min, Some(ColumnRef::bare("a"))),
            (AggFunc::Max, Some(ColumnRef::bare("a"))),
            (AggFunc::Avg, Some(ColumnRef::bare("a"))),
        ];
        for (func, column) in shapes {
            let q = SelectQuery {
                with: vec![],
                select: vec![crate::plan::SelectItem::Aggregate {
                    func,
                    column: column.clone(),
                    alias: Some("x".into()),
                }],
                from: vec![TableRef::named("t")],
                predicate: None,
                group_by: vec![],
                limit: None,
            };
            let sql = render_query(&q);
            let back = parse(&sql).unwrap_or_else(|e| {
                panic!("aggregate shape {func:?}/{column:?} failed to parse: {e}\n{sql}")
            });
            assert_eq!(back, q, "aggregate shape diverged through {sql}");
        }
    }

    #[test]
    fn renders_double_literals_roundtrip() {
        for d in [1.0, -4.25, 0.5, 1e300, -2.5e-7, f64::MIN, f64::MAX] {
            let e = Expr::col_eq(ColumnRef::bare("a"), Value::Double(d));
            let sql = format!("SELECT * FROM t WHERE {}", render_expr(&e));
            let q = parse(&sql).unwrap_or_else(|err| panic!("{sql}: {err}"));
            assert_eq!(q.predicate.unwrap(), e, "double {d} diverged through {sql}");
        }
        // Non-finite doubles render as DOUBLE '…', which the parser
        // rejects with a defined error rather than misparsing.
        for d in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = Expr::col_eq(ColumnRef::bare("a"), Value::Double(d));
            let sql = format!("SELECT * FROM t WHERE {}", render_expr(&e));
            assert!(parse(&sql).is_err(), "non-finite literal must not parse: {sql}");
        }
    }

    #[test]
    fn renders_placeholders_roundtrip() {
        let sql = "SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ?";
        let q = parse(sql).unwrap();
        let q2 = parse(&render_query(&q)).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn renders_query_with_hint_roundtrip() {
        let sql = "WITH pol AS (SELECT * FROM w FORCE INDEX (owner) WHERE owner = 1 OR owner = 2) \
                   SELECT COUNT(*) AS n FROM pol";
        let q = parse(sql).unwrap();
        let q2 = parse(&render_query(&q)).unwrap();
        assert_eq!(q, q2);
    }
}
