//! Execution statistics and the simulated cost clock.
//!
//! The paper's cost model (Section 4, Equation 3) is expressed in terms of
//! `c_r` (cost of reading a tuple from disk), `c_e` (cost of evaluating a
//! tuple against one policy's object conditions) and UDF invocation/execution
//! costs. Wall-clock time on a laptop is noisy and hardware-specific, so in
//! addition to real timing the engine maintains a *deterministic simulated
//! cost counter*: every page read, tuple scan, predicate evaluation and UDF
//! invocation bumps the counters below. Benchmarks report both clocks; the
//! shape comparisons in EXPERIMENTS.md use the simulated clock where
//! determinism matters and wall time elsewhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cost-unit weights for the simulated clock. One unit ~ one in-memory
/// predicate evaluation. Defaults follow the calibration in
/// `sieve_core::cost` (a random page read is far more expensive than an
/// evaluation; a UDF invocation costs a fixed overhead plus per-policy work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Cost of reading one page sequentially.
    pub seq_page: f64,
    /// Cost of reading one page at random (index traversal).
    pub rand_page: f64,
    /// Cost of materializing one tuple out of a page.
    pub tuple_read: f64,
    /// Cost of one simple predicate evaluation against a tuple.
    pub predicate_eval: f64,
    /// Fixed cost of invoking a UDF once (the paper's `UDF_inv`).
    pub udf_invoke: f64,
    /// Cost of one index probe (B-tree descent).
    pub index_probe: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Ratios chosen to mirror a buffer-pooled RDBMS: random I/O is ~4x
        // sequential, a page holds many tuples, and a UDF invocation costs
        // a few hundred predicate evaluations (interpreter entry, argument
        // marshalling and cursor setup — the overhead the paper's
        // Experiment 2.1 found amortized only beyond ~120 policies per
        // partition).
        CostWeights {
            seq_page: 50.0,
            rand_page: 200.0,
            tuple_read: 1.0,
            predicate_eval: 1.0,
            udf_invoke: 250.0,
            index_probe: 20.0,
        }
    }
}

/// Raw event counters accumulated during one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Pages read sequentially (table scans).
    pub seq_pages_read: u64,
    /// Pages read via index lookups (random access).
    pub rand_pages_read: u64,
    /// Tuples materialized out of storage.
    pub tuples_read: u64,
    /// Simple predicate evaluations (each comparison counts once).
    pub predicate_evals: u64,
    /// Policy object-condition-set evaluations (one per policy per tuple).
    pub policy_evals: u64,
    /// UDF invocations.
    pub udf_invocations: u64,
    /// Index probes (point or range descents).
    pub index_probes: u64,
    /// Tuples emitted by the root operator.
    pub tuples_output: u64,
}

impl Counters {
    /// Simulated cost of these events under `w`.
    pub fn simulated_cost(&self, w: &CostWeights) -> f64 {
        self.seq_pages_read as f64 * w.seq_page
            + self.rand_pages_read as f64 * w.rand_page
            + self.tuples_read as f64 * w.tuple_read
            + self.predicate_evals as f64 * w.predicate_eval
            + self.udf_invocations as f64 * w.udf_invoke
            + self.index_probes as f64 * w.index_probe
    }

    /// Element-wise sum of two counter sets.
    pub fn merge(&mut self, other: &Counters) {
        self.seq_pages_read += other.seq_pages_read;
        self.rand_pages_read += other.rand_pages_read;
        self.tuples_read += other.tuples_read;
        self.predicate_evals += other.predicate_evals;
        self.policy_evals += other.policy_evals;
        self.udf_invocations += other.udf_invocations;
        self.index_probes += other.index_probes;
        self.tuples_output += other.tuples_output;
    }
}

/// The lock-free counter block behind a [`StatsSink`]. Plain relaxed
/// atomics: operators on concurrent executor threads record into the same
/// sink without serializing on a mutex (the sink sits on the query hot
/// path — under the concurrent `SieveService` every parallel query bumps
/// these counters).
#[derive(Default)]
struct AtomicCounters {
    seq_pages_read: AtomicU64,
    rand_pages_read: AtomicU64,
    tuples_read: AtomicU64,
    predicate_evals: AtomicU64,
    policy_evals: AtomicU64,
    udf_invocations: AtomicU64,
    index_probes: AtomicU64,
    tuples_output: AtomicU64,
}

/// A shareable statistics sink. Cloning shares the underlying counters, so
/// every operator in a plan (and every UDF it invokes) can record into the
/// same sink cheaply. Counters are relaxed atomics: recording from many
/// threads never blocks; a [`StatsSink::snapshot`] taken while queries are
/// in flight sees each counter at some recent value (per-query attribution
/// under concurrency is the caller's concern — time a dedicated sink, or
/// quiesce first).
#[derive(Clone, Default)]
pub struct StatsSink {
    inner: Arc<AtomicCounters>,
}

impl StatsSink {
    /// Fresh sink with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` sequentially-read pages.
    pub fn seq_pages(&self, n: u64) {
        self.inner.seq_pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` randomly-read pages.
    pub fn rand_pages(&self, n: u64) {
        self.inner.rand_pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` tuples materialized.
    pub fn tuples(&self, n: u64) {
        self.inner.tuples_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` predicate evaluations.
    pub fn predicates(&self, n: u64) {
        self.inner.predicate_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` policy evaluations.
    pub fn policies(&self, n: u64) {
        self.inner.policy_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one UDF invocation.
    pub fn udf_invocation(&self) {
        self.inner.udf_invocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` index probes.
    pub fn index_probes(&self, n: u64) {
        self.inner.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` output tuples.
    pub fn outputs(&self, n: u64) {
        self.inner.tuples_output.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> Counters {
        let c = &*self.inner;
        Counters {
            seq_pages_read: c.seq_pages_read.load(Ordering::Relaxed),
            rand_pages_read: c.rand_pages_read.load(Ordering::Relaxed),
            tuples_read: c.tuples_read.load(Ordering::Relaxed),
            predicate_evals: c.predicate_evals.load(Ordering::Relaxed),
            policy_evals: c.policy_evals.load(Ordering::Relaxed),
            udf_invocations: c.udf_invocations.load(Ordering::Relaxed),
            index_probes: c.index_probes.load(Ordering::Relaxed),
            tuples_output: c.tuples_output.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        let c = &*self.inner;
        c.seq_pages_read.store(0, Ordering::Relaxed);
        c.rand_pages_read.store(0, Ordering::Relaxed);
        c.tuples_read.store(0, Ordering::Relaxed);
        c.predicate_evals.store(0, Ordering::Relaxed);
        c.policy_evals.store(0, Ordering::Relaxed);
        c.udf_invocations.store(0, Ordering::Relaxed);
        c.index_probes.store(0, Ordering::Relaxed);
        c.tuples_output.store(0, Ordering::Relaxed);
    }
}

/// The result of timing one query execution: wall time plus the simulated
/// clock derived from the counters.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Event counters for the execution.
    pub counters: Counters,
    /// Wall-clock duration.
    pub wall: std::time::Duration,
    /// Simulated cost under the weights in effect.
    pub simulated_cost: f64,
}

impl ExecStats {
    /// Wall time in milliseconds as a float.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }
}

/// Helper to time a closure and combine with a sink snapshot.
pub fn timed<R>(sink: &StatsSink, weights: &CostWeights, f: impl FnOnce() -> R) -> (R, ExecStats) {
    sink.reset();
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed();
    let counters = sink.snapshot();
    (
        out,
        ExecStats {
            counters,
            wall,
            simulated_cost: counters.simulated_cost(weights),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let sink = StatsSink::new();
        sink.seq_pages(3);
        sink.tuples(10);
        sink.predicates(20);
        sink.udf_invocation();
        let snap = sink.snapshot();
        assert_eq!(snap.seq_pages_read, 3);
        assert_eq!(snap.tuples_read, 10);
        assert_eq!(snap.predicate_evals, 20);
        assert_eq!(snap.udf_invocations, 1);

        let mut other = Counters {
            rand_pages_read: 5,
            ..Default::default()
        };
        other.merge(&snap);
        assert_eq!(other.rand_pages_read, 5);
        assert_eq!(other.tuples_read, 10);
    }

    #[test]
    fn simulated_cost_weighted() {
        let w = CostWeights::default();
        let c = Counters {
            seq_pages_read: 2,
            predicate_evals: 10,
            ..Default::default()
        };
        assert_eq!(c.simulated_cost(&w), 2.0 * w.seq_page + 10.0 * w.predicate_eval);
    }

    #[test]
    fn timed_resets_and_snapshots() {
        let sink = StatsSink::new();
        sink.tuples(999); // stale counts must not leak into the timing
        let w = CostWeights::default();
        let (out, stats) = timed(&sink, &w, || {
            sink.tuples(7);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(stats.counters.tuples_read, 7);
        assert!(stats.wall_ms() >= 0.0);
    }

    #[test]
    fn shared_sink_across_clones() {
        let a = StatsSink::new();
        let b = a.clone();
        a.index_probes(4);
        b.index_probes(1);
        assert_eq!(a.snapshot().index_probes, 5);
    }
}
