//! Heap-table storage with a page model.
//!
//! Rows live in insertion order in fixed-capacity pages. The page model is
//! what gives the simulated cost clock its I/O component: a sequential scan
//! touches every page once; fetching rows through an index touches the set
//! of distinct pages containing the matching rows (random reads), which is
//! exactly the trade-off SIEVE's strategy selection reasons about
//! (Section 5.5: "choosing [LinearScan] if the random access due to index
//! scan is expected to be more costly than the sequential access").

use crate::schema::TableSchema;
use crate::stats::StatsSink;
use crate::value::Value;

/// Number of rows per simulated page. A WiFi-connectivity row is ~40 bytes
/// of payload, so 256 rows/page approximates a 16 KiB InnoDB page.
pub const ROWS_PER_PAGE: usize = 256;

/// Identifier of a row within a table: its position in insertion order.
pub type RowId = u64;

/// A stored row.
pub type Row = Vec<Value>;

/// A heap table: schema plus rows in insertion order.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of pages occupied.
    pub fn page_count(&self) -> u64 {
        (self.rows.len().div_ceil(ROWS_PER_PAGE)) as u64
    }

    /// Page number containing a row.
    pub fn page_of(row_id: RowId) -> u64 {
        row_id / ROWS_PER_PAGE as u64
    }

    /// Append a row; panics if the arity does not match the schema
    /// (generator bugs should fail loudly).
    pub fn insert(&mut self, row: Row) -> RowId {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} != schema arity {} for table {}",
            row.len(),
            self.schema.arity(),
            self.schema.name
        );
        let id = self.rows.len() as RowId;
        self.rows.push(row);
        id
    }

    /// Bulk-append rows.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) {
        for r in rows {
            self.insert(r);
        }
    }

    /// Direct row access without cost accounting (used by index builds and
    /// the reference oracle, which model no I/O).
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id as usize]
    }

    /// All rows, no cost accounting.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Sequential scan: charges every page once (sequential) plus one tuple
    /// read per row, then yields all rows.
    pub fn scan<'a>(&'a self, stats: &StatsSink) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        stats.seq_pages(self.page_count());
        stats.tuples(self.rows.len() as u64);
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as RowId, r))
    }

    /// Fetch a set of rows by id (as an index would): charges one random
    /// page read per *distinct* page touched — a sorted, deduplicated page
    /// walk, the same effect PostgreSQL gets from a bitmap heap scan — plus
    /// one tuple read per row.
    pub fn fetch<'a>(
        &'a self,
        row_ids: &[RowId],
        stats: &StatsSink,
    ) -> Vec<(RowId, &'a Row)> {
        let mut pages: Vec<u64> = row_ids.iter().map(|&r| Self::page_of(r)).collect();
        pages.sort_unstable();
        pages.dedup();
        stats.rand_pages(pages.len() as u64);
        stats.tuples(row_ids.len() as u64);
        row_ids
            .iter()
            .map(|&id| (id, &self.rows[id as usize]))
            .collect()
    }

    /// Value of `col` in row `id` (no accounting; callers charge reads).
    pub fn value(&self, id: RowId, col: usize) -> &Value {
        &self.rows[id as usize][col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn table_with_rows(n: usize) -> Table {
        let mut t = Table::new(TableSchema::of(
            "t",
            &[("id", DataType::Int), ("v", DataType::Int)],
        ));
        for i in 0..n {
            t.insert(vec![Value::Int(i as i64), Value::Int((i * 7) as i64)]);
        }
        t
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(table_with_rows(0).page_count(), 0);
        assert_eq!(table_with_rows(1).page_count(), 1);
        assert_eq!(table_with_rows(ROWS_PER_PAGE).page_count(), 1);
        assert_eq!(table_with_rows(ROWS_PER_PAGE + 1).page_count(), 2);
    }

    #[test]
    fn scan_charges_sequential_pages() {
        let t = table_with_rows(ROWS_PER_PAGE * 3 + 10);
        let stats = StatsSink::new();
        let n = t.scan(&stats).count();
        assert_eq!(n, ROWS_PER_PAGE * 3 + 10);
        let c = stats.snapshot();
        assert_eq!(c.seq_pages_read, 4);
        assert_eq!(c.tuples_read, (ROWS_PER_PAGE * 3 + 10) as u64);
        assert_eq!(c.rand_pages_read, 0);
    }

    #[test]
    fn fetch_charges_distinct_pages_only() {
        let t = table_with_rows(ROWS_PER_PAGE * 4);
        let stats = StatsSink::new();
        // Three rows on page 0, one on page 2: two distinct pages.
        let ids = vec![0, 1, 2, (ROWS_PER_PAGE * 2) as RowId];
        let rows = t.fetch(&ids, &stats);
        assert_eq!(rows.len(), 4);
        let c = stats.snapshot();
        assert_eq!(c.rand_pages_read, 2);
        assert_eq!(c.tuples_read, 4);
        assert_eq!(c.seq_pages_read, 0);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = table_with_rows(0);
        t.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn fetch_preserves_requested_order() {
        let t = table_with_rows(10);
        let stats = StatsSink::new();
        let rows = t.fetch(&[5, 2, 7], &stats);
        let ids: Vec<RowId> = rows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![5, 2, 7]);
    }
}
