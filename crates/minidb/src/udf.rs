//! User-defined functions.
//!
//! SIEVE's ∆ operator (paper Section 5.2) is implemented as a UDF layered on
//! the engine, exactly as the paper layers it on MySQL/PostgreSQL. The
//! registry charges the fixed invocation overhead (`UDF_inv`) on every call;
//! whatever work the UDF body does (policy fetches, per-policy evaluation —
//! the paper's `UDF_exec`) is charged by the body itself through the stats
//! sink it receives.

use crate::error::{DbError, DbResult};
use crate::stats::StatsSink;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Context handed to a UDF invocation.
pub struct UdfContext<'a> {
    /// Stats sink for the executing query; UDF bodies charge their work here.
    pub stats: &'a StatsSink,
}

/// A user-defined scalar function.
pub trait Udf: Send + Sync {
    /// Invoke the function on already-evaluated arguments.
    fn invoke(&self, args: &[Value], ctx: &UdfContext<'_>) -> DbResult<Value>;
}

/// Blanket impl so closures register directly.
impl<F> Udf for F
where
    F: Fn(&[Value], &UdfContext<'_>) -> DbResult<Value> + Send + Sync,
{
    fn invoke(&self, args: &[Value], ctx: &UdfContext<'_>) -> DbResult<Value> {
        self(args, ctx)
    }
}

/// Registry of UDFs by (case-insensitive) name.
#[derive(Default, Clone)]
pub struct UdfRegistry {
    funcs: HashMap<String, Arc<dyn Udf>>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function, replacing any existing one with the same name.
    pub fn register(&mut self, name: impl Into<String>, f: Arc<dyn Udf>) {
        self.funcs.insert(name.into().to_ascii_lowercase(), f);
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> DbResult<Arc<dyn Udf>> {
        self.funcs
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DbError::UnknownUdf(name.to_string()))
    }

    /// True iff a function with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(&name.to_ascii_lowercase())
    }

    /// Invoke by name, charging the invocation overhead.
    pub fn invoke(&self, name: &str, args: &[Value], ctx: &UdfContext<'_>) -> DbResult<Value> {
        let f = self.get(name)?;
        ctx.stats.udf_invocation();
        f.invoke(args, ctx)
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.funcs.keys().collect();
        names.sort();
        f.debug_struct("UdfRegistry").field("funcs", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_udf_roundtrip() {
        let mut reg = UdfRegistry::new();
        reg.register(
            "double_it",
            Arc::new(|args: &[Value], _ctx: &UdfContext<'_>| {
                let n = args[0]
                    .as_int()
                    .ok_or_else(|| DbError::TypeError("int expected".into()))?;
                Ok(Value::Int(n * 2))
            }),
        );
        let stats = StatsSink::new();
        let ctx = UdfContext { stats: &stats };
        let out = reg.invoke("DOUBLE_IT", &[Value::Int(21)], &ctx).unwrap();
        assert_eq!(out, Value::Int(42));
        assert_eq!(stats.snapshot().udf_invocations, 1);
    }

    #[test]
    fn unknown_udf_errors() {
        let reg = UdfRegistry::new();
        let stats = StatsSink::new();
        let ctx = UdfContext { stats: &stats };
        assert_eq!(
            reg.invoke("nope", &[], &ctx),
            Err(DbError::UnknownUdf("nope".into()))
        );
        // A failed lookup must not charge an invocation.
        assert_eq!(stats.snapshot().udf_invocations, 0);
    }

    #[test]
    fn registration_is_case_insensitive() {
        let mut reg = UdfRegistry::new();
        reg.register(
            "Delta",
            Arc::new(|_: &[Value], _: &UdfContext<'_>| Ok(Value::Bool(true))),
        );
        assert!(reg.contains("delta"));
        assert!(reg.contains("DELTA"));
    }
}
