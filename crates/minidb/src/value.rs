//! Typed values and data types for the engine.
//!
//! The SIEVE workloads (Tables 2 and 3 of the paper) need integers, strings,
//! times (`ts-time`), and dates (`ts-date`); policies additionally compare
//! values with the full comparison-operator set of the policy model
//! (Section 3.1).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Time of day, stored as seconds since midnight (0..86400).
    Time,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
    /// 64-bit float.
    Double,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Time => "TIME",
            DataType::Date => "DATE",
            DataType::Double => "DOUBLE",
        };
        f.write_str(s)
    }
}

/// A runtime value. `Null` compares as the smallest value for index
/// ordering purposes, but all SQL comparisons against `Null` are false
/// (three-valued logic collapsed to false, which is what `WHERE` needs).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit integer value.
    Int(i64),
    /// Interned string value (cheap to clone; tuples carry many of these).
    Str(Arc<str>),
    /// Seconds since midnight.
    Time(u32),
    /// Days since the Unix epoch.
    Date(i32),
    /// 64-bit float value.
    Double(f64),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
            Value::Time(_) => Some(DataType::Time),
            Value::Date(_) => Some(DataType::Date),
            Value::Double(_) => Some(DataType::Double),
        }
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a string slice, if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract a time-of-day in seconds, if this value is one.
    pub fn as_time(&self) -> Option<u32> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Extract a date in days since epoch, if this value is one.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Extract a double, if this value is one.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// A number usable for histogram bucketing: every non-null, non-string
    /// value maps onto the real line; strings hash onto it (stable within a
    /// process run, which is all selectivity estimation needs).
    pub fn numeric_key(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Some(*i as f64),
            Value::Time(t) => Some(*t as f64),
            Value::Date(d) => Some(*d as f64),
            Value::Double(d) => Some(*d),
            Value::Str(s) => {
                // Map the first 8 bytes to a float preserving lexicographic
                // order, so range estimates over strings stay monotone.
                let mut key: u64 = 0;
                for (i, b) in s.bytes().take(8).enumerate() {
                    key |= (b as u64) << (56 - 8 * i);
                }
                Some(key as f64)
            }
        }
    }

    /// Parse a time literal of the form `HH:MM` or `HH:MM:SS` into seconds
    /// since midnight.
    pub fn parse_time(s: &str) -> Option<u32> {
        let mut parts = s.split(':');
        let h: u32 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let sec: u32 = match parts.next() {
            Some(p) => p.parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() || h > 23 || m > 59 || sec > 59 {
            return None;
        }
        Some(h * 3600 + m * 60 + sec)
    }

    /// Parse a date literal of the form `YYYY-MM-DD` into days since epoch.
    /// Uses a civil-date conversion (no external time crate).
    pub fn parse_date(s: &str) -> Option<i32> {
        let mut parts = s.split('-');
        let y: i64 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let d: u32 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(days_from_civil(y, m, d))
    }

    /// Render a time value (seconds since midnight) as `HH:MM:SS`.
    pub fn format_time(t: u32) -> String {
        format!("{:02}:{:02}:{:02}", t / 3600, (t / 60) % 60, t % 60)
    }

    /// Render a date value (days since epoch) as `YYYY-MM-DD`.
    pub fn format_date(days: i32) -> String {
        let (y, m, d) = civil_from_days(days);
        format!("{y:04}-{m:02}-{d:02}")
    }
}

/// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all values: NULL first, then by type rank, then by
    /// value. Within numerics, `Int` and `Double` compare numerically so a
    /// mixed-type index key still behaves.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Double(b)) => cmp_f64(*a as f64, *b),
            (Double(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Double(a), Double(b)) => cmp_f64(*a, *b),
            (Str(a), Str(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Time(t) => t.hash(state),
            Value::Date(d) => d.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

impl Value {
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 2,
            Value::Time(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Time(t) => write!(f, "TIME '{}'", Value::format_time(*t)),
            Value::Date(d) => write!(f, "DATE '{}'", Value::format_date(*d)),
            Value::Double(d) => {
                if d.is_finite() {
                    // `{:?}` always emits a decimal point or exponent
                    // ("1.0", "1e300"), so the literal re-lexes as a
                    // Double — `{}` renders 1.0 as "1", which crosses the
                    // wire as an Int and silently changes the type.
                    write!(f, "{d:?}")
                } else {
                    // Non-finite doubles have no bare-literal SQL form;
                    // the DOUBLE '…' spelling is rejected by the parser
                    // with a defined error instead of misparsing.
                    write!(f, "DOUBLE '{d}'")
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_parse_roundtrip() {
        assert_eq!(Value::parse_time("09:00"), Some(9 * 3600));
        assert_eq!(Value::parse_time("23:59:59"), Some(86399));
        assert_eq!(Value::parse_time("24:00"), None);
        assert_eq!(Value::parse_time("9"), None);
        assert_eq!(Value::format_time(9 * 3600 + 30 * 60), "09:30:00");
    }

    #[test]
    fn date_parse_roundtrip() {
        assert_eq!(Value::parse_date("1970-01-01"), Some(0));
        assert_eq!(Value::parse_date("1970-01-02"), Some(1));
        // 2019-09-25 is a date used in the paper's running example.
        let d = Value::parse_date("2019-09-25").unwrap();
        assert_eq!(Value::format_date(d), "2019-09-25");
        assert_eq!(Value::parse_date("2019-13-01"), None);
    }

    #[test]
    fn date_known_value() {
        // 2000-03-01 is 11017 days after the epoch (known constant).
        assert_eq!(Value::parse_date("2000-03-01"), Some(11017));
    }

    #[test]
    fn ordering_null_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
    }

    #[test]
    fn ordering_numeric_mixed() {
        assert!(Value::Int(1) < Value::Double(1.5));
        assert!(Value::Double(0.5) < Value::Int(1));
        assert_eq!(Value::Int(2), Value::Double(2.0));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::Time(100) < Value::Time(101));
        assert!(Value::Date(-1) < Value::Date(0));
    }

    #[test]
    fn numeric_key_monotone_for_strings() {
        let a = Value::str("alpha").numeric_key().unwrap();
        let b = Value::str("beta").numeric_key().unwrap();
        assert!(a < b);
    }

    #[test]
    fn display_escapes_quotes() {
        assert_eq!(Value::str("O'Brien").to_string(), "'O''Brien'");
    }

    #[test]
    fn hash_eq_consistent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(42)), h(&Value::Int(42)));
        assert_eq!(h(&Value::str("x")), h(&Value::str("x")));
    }
}
