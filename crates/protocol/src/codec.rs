//! Fail-closed binary codec for protocol payloads.
//!
//! All integers are little-endian. Strings and sequences are
//! length-prefixed with a `u32` count. Decoding goes through a bounded
//! [`Reader`] cursor: every read checks the remaining length and errors
//! with [`ProtocolError::Truncated`] instead of reading past the end, and
//! message decoders call [`Reader::finish`] so trailing garbage is
//! rejected rather than silently ignored. There is no partial decode: a
//! frame either yields exactly one well-formed value or an error.

use std::sync::Arc;

use minidb::exec::QueryResult;
use minidb::table::Row;
use minidb::value::Value;
use sieve_core::policy::QueryMetadata;

use crate::error::{ProtocolError, ProtocolResult};

/// Bounded cursor over a received frame's payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> ProtocolResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> ProtocolResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> ProtocolResult<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self, context: &'static str) -> ProtocolResult<i32> {
        Ok(self.u32(context)? as i32)
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> ProtocolResult<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> ProtocolResult<i64> {
        Ok(self.u64(context)? as i64)
    }

    /// Read an IEEE-754 `f64` (bit pattern, little-endian).
    pub fn f64(&mut self, context: &'static str) -> ProtocolResult<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, context: &'static str) -> ProtocolResult<String> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8 { context })
    }

    /// Read a sequence count, bounding it by the bytes actually present so
    /// a hostile count cannot trigger a huge allocation up front. Each
    /// element of any sequence costs at least one byte on the wire.
    pub fn seq_len(&mut self, context: &'static str) -> ProtocolResult<usize> {
        let n = self.u32(context)? as usize;
        if n > self.remaining() {
            return Err(ProtocolError::Truncated { context });
        }
        Ok(n)
    }

    /// Assert the payload was fully consumed.
    pub fn finish(self) -> ProtocolResult<()> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes { extra: self.remaining() });
        }
        Ok(())
    }
}

/// Append-only encoder helpers over a byte buffer.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty payload.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consume the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.u32(v as u32);
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Write an IEEE-754 `f64` bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

// Value tags — part of the wire format, do not renumber.
const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_TIME: u8 = 4;
const VAL_DATE: u8 = 5;
const VAL_DOUBLE: u8 = 6;

/// Encode a [`Value`] (tag byte + payload).
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(VAL_NULL),
        Value::Bool(b) => {
            w.u8(VAL_BOOL);
            w.u8(u8::from(*b));
        }
        Value::Int(i) => {
            w.u8(VAL_INT);
            w.i64(*i);
        }
        Value::Str(s) => {
            w.u8(VAL_STR);
            w.string(s);
        }
        Value::Time(t) => {
            w.u8(VAL_TIME);
            w.u32(*t);
        }
        Value::Date(d) => {
            w.u8(VAL_DATE);
            w.i32(*d);
        }
        Value::Double(d) => {
            w.u8(VAL_DOUBLE);
            w.f64(*d);
        }
    }
}

/// Decode a [`Value`], failing closed on unknown tags or malformed
/// payloads (a bool byte other than 0/1 is rejected, not coerced).
pub fn read_value(r: &mut Reader<'_>) -> ProtocolResult<Value> {
    let tag = r.u8("value tag")?;
    Ok(match tag {
        VAL_NULL => Value::Null,
        VAL_BOOL => match r.u8("bool value")? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            other => return Err(ProtocolError::UnknownTag { context: "bool value", tag: other }),
        },
        VAL_INT => Value::Int(r.i64("int value")?),
        VAL_STR => Value::Str(Arc::from(r.string("string value")?)),
        VAL_TIME => Value::Time(r.u32("time value")?),
        VAL_DATE => Value::Date(r.i32("date value")?),
        VAL_DOUBLE => Value::Double(r.f64("double value")?),
        other => return Err(ProtocolError::UnknownTag { context: "value", tag: other }),
    })
}

/// Encode [`QueryMetadata`]: querier, purpose, context pairs.
pub fn write_metadata(w: &mut Writer, qm: &QueryMetadata) {
    w.i64(qm.querier);
    w.string(&qm.purpose);
    w.u32(qm.context.len() as u32);
    for (k, v) in &qm.context {
        w.string(k);
        write_value(w, v);
    }
}

/// Decode [`QueryMetadata`].
pub fn read_metadata(r: &mut Reader<'_>) -> ProtocolResult<QueryMetadata> {
    let querier = r.i64("metadata querier")?;
    let purpose = r.string("metadata purpose")?;
    let n = r.seq_len("metadata context")?;
    let mut context = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.string("context key")?;
        let v = read_value(r)?;
        context.push((k, v));
    }
    Ok(QueryMetadata { querier, purpose, context })
}

/// Encode a [`QueryResult`]: column names then rows of values.
pub fn write_result(w: &mut Writer, res: &QueryResult) {
    w.u32(res.columns.len() as u32);
    for c in &res.columns {
        w.string(c);
    }
    w.u32(res.rows.len() as u32);
    for row in &res.rows {
        w.u32(row.len() as u32);
        for v in row {
            write_value(w, v);
        }
    }
}

/// Decode a [`QueryResult`].
pub fn read_result(r: &mut Reader<'_>) -> ProtocolResult<QueryResult> {
    let ncols = r.seq_len("result columns")?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(r.string("column name")?);
    }
    let nrows = r.seq_len("result rows")?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let ncells = r.seq_len("row cells")?;
        let mut row: Row = Vec::with_capacity(ncells);
        for _ in 0..ncells {
            row.push(read_value(r)?);
        }
        rows.push(row);
    }
    Ok(QueryResult { columns, rows })
}
