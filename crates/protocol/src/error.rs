//! Protocol-layer errors and the wire error taxonomy.
//!
//! Two distinct error families live here:
//!
//! - [`ProtocolError`] — *this peer* failed to frame, encode, or decode a
//!   message. Decode is fail-closed: any malformed, truncated, oversized,
//!   or trailing-garbage input is an error, never a best-effort partial
//!   value. A `ProtocolError` on a connection means the byte stream can no
//!   longer be trusted and the connection must be torn down.
//! - [`WireError`] — a *remote* failure carried inside an `Error` frame: a
//!   typed code from [`ErrorCode`] plus a human-readable message. The
//!   server maps `SieveError`/`BackendError` onto these so clients can
//!   classify failures (retryable? must re-prepare? identity rejected?)
//!   without parsing strings.

use std::fmt;

use sieve_core::backend::BackendError;
use sieve_core::SieveError;

/// Failure to encode, decode, or frame a protocol message.
///
/// Every variant is terminal for the connection that produced it: after a
/// framing or decode error the stream position is unknown and the only
/// safe move is to close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// An underlying I/O operation failed (kind + rendered message).
    Io(std::io::ErrorKind, String),
    /// The peer closed the stream cleanly between frames.
    ConnectionClosed,
    /// Input ended before the value under `context` was fully read.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A frame declared a length above [`crate::frame::MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The maximum this implementation accepts.
        max: u32,
    },
    /// A message or value tag byte is not one this version understands.
    UnknownTag {
        /// What kind of tag was being decoded.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// What string field was being decoded.
        context: &'static str,
    },
    /// A message decoded fine but left unconsumed bytes in the frame.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
    /// The peers disagree on the protocol version at handshake.
    VersionMismatch {
        /// Version this side speaks.
        ours: u32,
        /// Version the peer announced.
        theirs: u32,
    },
    /// The peer sent a well-formed message that is illegal in the current
    /// connection state (e.g. `Execute` before `Auth`).
    UnexpectedMessage {
        /// What the state machine was prepared to accept.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
            ProtocolError::ConnectionClosed => write!(f, "connection closed by peer"),
            ProtocolError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            ProtocolError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            ProtocolError::BadUtf8 { context } => write!(f, "invalid utf-8 in {context}"),
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, theirs {theirs}")
            }
            ProtocolError::UnexpectedMessage { expected, got } => {
                write!(f, "unexpected message: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::ConnectionClosed
        } else {
            ProtocolError::Io(e.kind(), e.to_string())
        }
    }
}

/// Result alias for protocol operations.
pub type ProtocolResult<T> = Result<T, ProtocolError>;

/// Typed failure classification carried in wire `Error` frames.
///
/// The numeric values are part of the wire format — do not renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The presented auth token is not recognised.
    AuthFailed = 1,
    /// A request's embedded `QueryMetadata.querier` disagrees with the
    /// session's authenticated identity. Always fail-closed.
    IdentityMismatch = 2,
    /// A request arrived before the connection authenticated.
    NotAuthenticated = 3,
    /// The middleware could not produce a guarded query (parse/rewrite
    /// failure, unknown relation, policy-store problem).
    Rewrite = 4,
    /// Backend connection dropped (`BackendError::ConnectionLost`).
    BackendConnectionLost = 5,
    /// Backend call exceeded its deadline (`BackendError::Timeout`).
    BackendTimeout = 6,
    /// Backend lost the prepared statement (`BackendError::UnknownStatement`).
    BackendUnknownStatement = 7,
    /// Transient backend fault (`BackendError::Transient`).
    BackendTransient = 8,
    /// Backend rejected the query semantically (`BackendError::Rejected`).
    BackendRejected = 9,
    /// Permanent backend failure (`BackendError::Fatal`).
    BackendFatal = 10,
    /// The retry budget ran out (`SieveError::RetriesExhausted`).
    RetriesExhausted = 11,
    /// A worker panicked or a lock poisoned inside the service.
    Poisoned = 12,
    /// Internal middleware invariant violation.
    Internal = 13,
    /// The client referenced a statement handle this server never issued
    /// (or already closed).
    UnknownStatementHandle = 14,
    /// The server could not understand the client's frame. Sent (when
    /// possible) immediately before the server closes the connection.
    Protocol = 15,
    /// The static soundness verifier refuted a freshly generated guard
    /// (`SieveError::SoundnessRefuted`): the rewrite would leak a
    /// concrete row, so the server discarded it and failed closed.
    SoundnessRefuted = 16,
}

impl ErrorCode {
    /// Decode a wire byte into a code; `None` for bytes this version does
    /// not know (the caller fails closed).
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::AuthFailed,
            2 => ErrorCode::IdentityMismatch,
            3 => ErrorCode::NotAuthenticated,
            4 => ErrorCode::Rewrite,
            5 => ErrorCode::BackendConnectionLost,
            6 => ErrorCode::BackendTimeout,
            7 => ErrorCode::BackendUnknownStatement,
            8 => ErrorCode::BackendTransient,
            9 => ErrorCode::BackendRejected,
            10 => ErrorCode::BackendFatal,
            11 => ErrorCode::RetriesExhausted,
            12 => ErrorCode::Poisoned,
            13 => ErrorCode::Internal,
            14 => ErrorCode::UnknownStatementHandle,
            15 => ErrorCode::Protocol,
            16 => ErrorCode::SoundnessRefuted,
            _ => return None,
        })
    }

    /// All codes, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 16] = [
        ErrorCode::AuthFailed,
        ErrorCode::IdentityMismatch,
        ErrorCode::NotAuthenticated,
        ErrorCode::Rewrite,
        ErrorCode::BackendConnectionLost,
        ErrorCode::BackendTimeout,
        ErrorCode::BackendUnknownStatement,
        ErrorCode::BackendTransient,
        ErrorCode::BackendRejected,
        ErrorCode::BackendFatal,
        ErrorCode::RetriesExhausted,
        ErrorCode::Poisoned,
        ErrorCode::Internal,
        ErrorCode::UnknownStatementHandle,
        ErrorCode::Protocol,
        ErrorCode::SoundnessRefuted,
    ];
}

/// A remote failure carried in an `Error` frame: typed code + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure classification.
    pub code: ErrorCode,
    /// Human-readable detail (not machine-parsed).
    pub message: String,
}

impl WireError {
    /// Construct a wire error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError { code, message: message.into() }
    }

    /// Map a service-level failure onto its wire classification. This is
    /// the server's one conversion point; clients get the same taxonomy
    /// the in-process API exposes through `SieveError`.
    pub fn from_sieve(e: &SieveError) -> Self {
        match e {
            SieveError::Rewrite(db) => WireError::new(ErrorCode::Rewrite, db.to_string()),
            SieveError::Backend(be) => Self::from_backend(be),
            SieveError::RetriesExhausted { attempts, last } => WireError::new(
                ErrorCode::RetriesExhausted,
                format!("{attempts} attempts; last: {last}"),
            ),
            SieveError::Poisoned(what) => WireError::new(ErrorCode::Poisoned, *what),
            SieveError::Internal(what) => WireError::new(ErrorCode::Internal, *what),
            SieveError::SoundnessRefuted { .. } => {
                WireError::new(ErrorCode::SoundnessRefuted, e.to_string())
            }
        }
    }

    /// Map a backend failure onto its wire classification.
    pub fn from_backend(e: &BackendError) -> Self {
        match e {
            BackendError::ConnectionLost(msg) => {
                WireError::new(ErrorCode::BackendConnectionLost, msg.clone())
            }
            BackendError::Timeout => WireError::new(ErrorCode::BackendTimeout, "timeout"),
            BackendError::UnknownStatement(id) => WireError::new(
                ErrorCode::BackendUnknownStatement,
                format!("unknown statement {id}"),
            ),
            BackendError::Transient(msg) => WireError::new(ErrorCode::BackendTransient, msg.clone()),
            BackendError::Rejected(db) => WireError::new(ErrorCode::BackendRejected, db.to_string()),
            BackendError::Fatal(msg) => WireError::new(ErrorCode::BackendFatal, msg.clone()),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}
