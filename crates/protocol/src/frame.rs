//! Length-prefixed framing over any byte stream.
//!
//! A frame is a little-endian `u32` payload length followed by exactly
//! that many payload bytes. The length prefix is bounded by
//! [`MAX_FRAME_LEN`]; a peer announcing more is rejected *before* any
//! allocation, so a hostile 4 GiB prefix cannot balloon memory. Reads are
//! exact: a stream that ends mid-frame yields
//! [`ProtocolError::ConnectionClosed`] (clean close between frames) or an
//! I/O error, never a short frame.

use std::io::{Read, Write};

use crate::error::{ProtocolError, ProtocolResult};

/// Largest payload either side will send or accept: 64 MiB. Generous for
/// query results, far below anything that could pressure memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> ProtocolResult<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(ProtocolError::Oversized { len: payload.len() as u32, max: MAX_FRAME_LEN });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. Distinguishes a clean close (EOF before any
/// prefix byte → [`ProtocolError::ConnectionClosed`]) from a truncated
/// frame (EOF mid-prefix or mid-payload).
pub fn read_frame<R: Read>(r: &mut R) -> ProtocolResult<Vec<u8>> {
    let mut prefix = [0u8; 4];
    read_exact_or_close(r, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len, max: MAX_FRAME_LEN });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_close(r, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` that maps EOF at offset zero of the *prefix* to a clean
/// close and every other premature EOF to truncation.
fn read_exact_or_close<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    eof_at_start_is_close: bool,
) -> ProtocolResult<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && eof_at_start_is_close {
                    Err(ProtocolError::ConnectionClosed)
                } else {
                    Err(ProtocolError::Truncated { context: "frame" })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut cur), Err(ProtocolError::ConnectionClosed)));
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let buf = u32::MAX.to_le_bytes().to_vec();
        let mut cur = &buf[..];
        assert!(matches!(read_frame(&mut cur), Err(ProtocolError::Oversized { .. })));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = &buf[..];
        assert!(matches!(read_frame(&mut cur), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn truncated_prefix_rejected() {
        let buf = [5u8, 0];
        let mut cur = &buf[..];
        assert!(matches!(read_frame(&mut cur), Err(ProtocolError::Truncated { .. })));
    }
}
