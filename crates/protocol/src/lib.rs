//! Wire protocol for the SIEVE enforcement service.
//!
//! This crate is the shared language between `sieve-server` and
//! `sieve-client`: framing, message types, value serialization, and the
//! wire error taxonomy. It deliberately knows nothing about transports or
//! sessions — both sides speak through any `io::Read + io::Write` pair.
//!
//! Layering (bottom up):
//!
//! - [`frame`] — `u32` length-prefixed frames with a hard size cap;
//!   oversized or truncated frames are rejected before allocation.
//! - [`codec`] — fail-closed binary encoding of primitives, `Value`,
//!   `QueryMetadata`, and `QueryResult` through a bounded cursor.
//! - [`message`] — versioned [`ClientMessage`]/[`ServerMessage`] enums
//!   with tag-based encode/decode covering handshake, auth, execute,
//!   prepare, execute-prepared, close, and error flows.
//! - [`error`] — [`ProtocolError`] for local encode/decode failures and
//!   the typed [`ErrorCode`]/[`WireError`] taxonomy the server maps
//!   `SieveError` onto.
//!
//! Everything decodes fail-closed: unknown tags, truncated payloads,
//! trailing bytes, bad UTF-8, and out-of-range lengths are all hard
//! errors. A malformed frame never produces a partial message.

#![warn(missing_docs)]
// Fail-closed codec: a malformed frame surfaces as a typed
// `ProtocolError`, never a panic (see this crate's `clippy.toml`).
// Tests opt back in — a failed assertion *should* panic there.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

pub mod codec;
pub mod error;
pub mod frame;
pub mod message;

pub use error::{ErrorCode, ProtocolError, ProtocolResult, WireError};
pub use frame::{read_frame, write_frame, MAX_FRAME_LEN};
pub use message::{ClientMessage, ServerMessage, WireStatementId, PROTOCOL_VERSION};
