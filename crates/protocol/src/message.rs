//! Versioned protocol messages and their tag-based encoding.
//!
//! Each message encodes as one frame payload: a tag byte followed by the
//! message's fields via the [`crate::codec`] primitives. Decoders consume
//! the whole payload ([`crate::codec::Reader::finish`]) so a frame either
//! yields exactly one message or an error — never a message plus ignored
//! bytes.
//!
//! # Connection lifecycle
//!
//! ```text
//! client                          server
//!   Hello { version }     ─▶
//!                         ◀─     HelloAck { version }
//!   Auth { token }        ─▶
//!                         ◀─     AuthAck { querier } | Error(AuthFailed)
//!   Execute / Prepare /   ─▶
//!   ExecutePrepared /
//!   ClosePrepared ...
//!                         ◀─     Rows | Prepared | Closed | Error
//!   Goodbye               ─▶
//!                         ◀─     Goodbye
//! ```

use minidb::exec::QueryResult;
use sieve_core::policy::QueryMetadata;

use crate::codec::{
    read_metadata, read_result, write_metadata, write_result, Reader, Writer,
};
use crate::error::{ErrorCode, ProtocolError, ProtocolResult, WireError};

/// Protocol version this implementation speaks. Negotiated in the
/// `Hello`/`HelloAck` handshake; both sides must match exactly.
pub const PROTOCOL_VERSION: u32 = 1;

/// Server-issued prepared-statement handle. Scoped to one connection;
/// meaningless on any other.
pub type WireStatementId = u64;

// Client message tags — wire format, do not renumber.
const CM_HELLO: u8 = 1;
const CM_AUTH: u8 = 2;
const CM_EXECUTE: u8 = 3;
const CM_PREPARE: u8 = 4;
const CM_EXECUTE_PREPARED: u8 = 5;
const CM_CLOSE_PREPARED: u8 = 6;
const CM_GOODBYE: u8 = 7;

// Server message tags — wire format, do not renumber.
const SM_HELLO_ACK: u8 = 1;
const SM_AUTH_ACK: u8 = 2;
const SM_ROWS: u8 = 3;
const SM_PREPARED: u8 = 4;
const SM_CLOSED: u8 = 5;
const SM_ERROR: u8 = 6;
const SM_GOODBYE: u8 = 7;

/// Messages the client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Opens the conversation; carries the client's protocol version.
    Hello {
        /// Version the client speaks.
        version: u32,
    },
    /// Presents an auth token binding this connection to one querier.
    Auth {
        /// Opaque bearer token.
        token: String,
    },
    /// One-shot guarded query.
    Execute {
        /// Querier identity + purpose + context. The querier must match
        /// the session's authenticated identity or the server rejects.
        metadata: QueryMetadata,
        /// Baseline SQL text.
        sql: String,
    },
    /// Prepare a guarded query for repeated execution.
    Prepare {
        /// Querier identity + purpose + context.
        metadata: QueryMetadata,
        /// Baseline SQL text.
        sql: String,
    },
    /// Execute a previously prepared statement.
    ExecutePrepared {
        /// Handle from a `Prepared` response.
        statement: WireStatementId,
    },
    /// Release a prepared statement's server-side resources.
    ClosePrepared {
        /// Handle from a `Prepared` response.
        statement: WireStatementId,
    },
    /// Clean shutdown of the connection.
    Goodbye,
}

impl ClientMessage {
    /// Short name for diagnostics and `UnexpectedMessage` errors.
    pub fn name(&self) -> &'static str {
        match self {
            ClientMessage::Hello { .. } => "Hello",
            ClientMessage::Auth { .. } => "Auth",
            ClientMessage::Execute { .. } => "Execute",
            ClientMessage::Prepare { .. } => "Prepare",
            ClientMessage::ExecutePrepared { .. } => "ExecutePrepared",
            ClientMessage::ClosePrepared { .. } => "ClosePrepared",
            ClientMessage::Goodbye => "Goodbye",
        }
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ClientMessage::Hello { version } => {
                w.u8(CM_HELLO);
                w.u32(*version);
            }
            ClientMessage::Auth { token } => {
                w.u8(CM_AUTH);
                w.string(token);
            }
            ClientMessage::Execute { metadata, sql } => {
                w.u8(CM_EXECUTE);
                write_metadata(&mut w, metadata);
                w.string(sql);
            }
            ClientMessage::Prepare { metadata, sql } => {
                w.u8(CM_PREPARE);
                write_metadata(&mut w, metadata);
                w.string(sql);
            }
            ClientMessage::ExecutePrepared { statement } => {
                w.u8(CM_EXECUTE_PREPARED);
                w.u64(*statement);
            }
            ClientMessage::ClosePrepared { statement } => {
                w.u8(CM_CLOSE_PREPARED);
                w.u64(*statement);
            }
            ClientMessage::Goodbye => w.u8(CM_GOODBYE),
        }
        w.into_bytes()
    }

    /// Decode a frame payload, rejecting unknown tags and trailing bytes.
    pub fn decode(payload: &[u8]) -> ProtocolResult<Self> {
        let mut r = Reader::new(payload);
        let tag = r.u8("client message tag")?;
        let msg = match tag {
            CM_HELLO => ClientMessage::Hello { version: r.u32("hello version")? },
            CM_AUTH => ClientMessage::Auth { token: r.string("auth token")? },
            CM_EXECUTE => ClientMessage::Execute {
                metadata: read_metadata(&mut r)?,
                sql: r.string("execute sql")?,
            },
            CM_PREPARE => ClientMessage::Prepare {
                metadata: read_metadata(&mut r)?,
                sql: r.string("prepare sql")?,
            },
            CM_EXECUTE_PREPARED => {
                ClientMessage::ExecutePrepared { statement: r.u64("statement id")? }
            }
            CM_CLOSE_PREPARED => {
                ClientMessage::ClosePrepared { statement: r.u64("statement id")? }
            }
            CM_GOODBYE => ClientMessage::Goodbye,
            other => {
                return Err(ProtocolError::UnknownTag { context: "client message", tag: other })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Messages the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// Accepts the handshake; carries the server's protocol version.
    HelloAck {
        /// Version the server speaks.
        version: u32,
    },
    /// Authentication succeeded; the connection is bound to `querier`.
    AuthAck {
        /// The querier identity the token resolved to.
        querier: i64,
    },
    /// Result rows for `Execute` or `ExecutePrepared`.
    Rows(QueryResult),
    /// A statement was prepared; `statement` names it on this connection.
    Prepared {
        /// Connection-scoped statement handle.
        statement: WireStatementId,
    },
    /// A `ClosePrepared` completed.
    Closed {
        /// The handle that was released.
        statement: WireStatementId,
    },
    /// The request failed; the connection stays usable unless the code is
    /// [`ErrorCode::Protocol`].
    Error(WireError),
    /// Acknowledges a client `Goodbye`; the server closes after sending.
    Goodbye,
}

impl ServerMessage {
    /// Short name for diagnostics and `UnexpectedMessage` errors.
    pub fn name(&self) -> &'static str {
        match self {
            ServerMessage::HelloAck { .. } => "HelloAck",
            ServerMessage::AuthAck { .. } => "AuthAck",
            ServerMessage::Rows(_) => "Rows",
            ServerMessage::Prepared { .. } => "Prepared",
            ServerMessage::Closed { .. } => "Closed",
            ServerMessage::Error(_) => "Error",
            ServerMessage::Goodbye => "Goodbye",
        }
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ServerMessage::HelloAck { version } => {
                w.u8(SM_HELLO_ACK);
                w.u32(*version);
            }
            ServerMessage::AuthAck { querier } => {
                w.u8(SM_AUTH_ACK);
                w.i64(*querier);
            }
            ServerMessage::Rows(res) => {
                w.u8(SM_ROWS);
                write_result(&mut w, res);
            }
            ServerMessage::Prepared { statement } => {
                w.u8(SM_PREPARED);
                w.u64(*statement);
            }
            ServerMessage::Closed { statement } => {
                w.u8(SM_CLOSED);
                w.u64(*statement);
            }
            ServerMessage::Error(err) => {
                w.u8(SM_ERROR);
                w.u8(err.code as u8);
                w.string(&err.message);
            }
            ServerMessage::Goodbye => w.u8(SM_GOODBYE),
        }
        w.into_bytes()
    }

    /// Decode a frame payload, rejecting unknown tags and trailing bytes.
    pub fn decode(payload: &[u8]) -> ProtocolResult<Self> {
        let mut r = Reader::new(payload);
        let tag = r.u8("server message tag")?;
        let msg = match tag {
            SM_HELLO_ACK => ServerMessage::HelloAck { version: r.u32("hello-ack version")? },
            SM_AUTH_ACK => ServerMessage::AuthAck { querier: r.i64("auth-ack querier")? },
            SM_ROWS => ServerMessage::Rows(read_result(&mut r)?),
            SM_PREPARED => ServerMessage::Prepared { statement: r.u64("statement id")? },
            SM_CLOSED => ServerMessage::Closed { statement: r.u64("statement id")? },
            SM_ERROR => {
                let code_byte = r.u8("error code")?;
                let code = ErrorCode::from_u8(code_byte).ok_or(ProtocolError::UnknownTag {
                    context: "error code",
                    tag: code_byte,
                })?;
                let message = r.string("error message")?;
                ServerMessage::Error(WireError { code, message })
            }
            SM_GOODBYE => ServerMessage::Goodbye,
            other => {
                return Err(ProtocolError::UnknownTag { context: "server message", tag: other })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}
