//! Connection authentication: token → querier identity.
//!
//! Every connection must authenticate before any query flows; the
//! resolved [`UserId`] is pinned to the connection and every subsequent
//! request's embedded metadata is checked against it (fail closed — a
//! mismatch is rejected with a typed error, never silently executed under
//! either identity).

use std::collections::HashMap;

use sieve_core::policy::UserId;

/// Maps bearer tokens to querier identities. Implementations must be
/// cheap and thread-safe: the server calls this once per connection from
/// per-connection threads.
pub trait Authenticator: Send + Sync + 'static {
    /// Resolve a token; `None` rejects the connection.
    fn authenticate(&self, token: &str) -> Option<UserId>;
}

/// Static token table: the obvious in-process authenticator for tests,
/// benches, and single-tenant deployments.
#[derive(Default)]
pub struct TokenAuthenticator {
    tokens: HashMap<String, UserId>,
}

impl TokenAuthenticator {
    /// Empty table (rejects everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `token` as authenticating `querier`.
    pub fn insert(&mut self, token: impl Into<String>, querier: UserId) -> &mut Self {
        self.tokens.insert(token.into(), querier);
        self
    }

    /// Builder-style [`TokenAuthenticator::insert`].
    pub fn with(mut self, token: impl Into<String>, querier: UserId) -> Self {
        self.tokens.insert(token.into(), querier);
        self
    }
}

impl Authenticator for TokenAuthenticator {
    fn authenticate(&self, token: &str) -> Option<UserId> {
        self.tokens.get(token).copied()
    }
}
