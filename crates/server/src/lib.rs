//! Wire server fronting the SIEVE enforcement service.
//!
//! Layering: [`crate::transport`] produces byte streams, the protocol
//! crate frames and types the messages, and [`crate::server`] runs the
//! per-connection state machine that maps authenticated requests onto
//! `sieve-core`'s `Session`/`Prepared` handles. The server never trusts a
//! request's embedded identity: each connection authenticates once
//! (token → querier) and every metadata-carrying frame is checked against
//! that pinned identity, failing closed on disagreement.
//!
//! The shipped transport is an in-process loopback (byte pipes behind the
//! same `Listener` trait a TCP implementation would use), which lets the
//! full client → frames → server → service path run in tests and benches
//! without sockets.

#![warn(missing_docs)]
// Fail-closed connection handling: a bad request or broken stream
// surfaces as an error frame or a closed connection, never a panicked
// worker (see this crate's `clippy.toml`). Tests opt back in.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
#![cfg_attr(test, allow(clippy::disallowed_methods, clippy::disallowed_macros))]

pub mod auth;
pub mod server;
pub mod transport;

pub use auth::{Authenticator, TokenAuthenticator};
pub use server::{ServerHandle, ServerStats, SieveServer};
pub use transport::{loopback, loopback_pair, Listener, LoopbackConn, LoopbackConnector, LoopbackListener};
