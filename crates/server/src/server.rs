//! The wire server: accept loop, per-connection protocol state machine,
//! and the registry mapping connections onto in-process session handles.
//!
//! One OS thread per connection, blocking I/O. A connection's lifecycle:
//!
//! 1. **Handshake** — `Hello` must be first; version mismatch closes.
//! 2. **Auth** — `Auth { token }` resolves to a [`UserId`] through the
//!    server's [`Authenticator`]; failure closes. The resolved identity
//!    is pinned for the life of the connection.
//! 3. **Requests** — `Execute`/`Prepare` carry `QueryMetadata`; the
//!    server *rejects* any whose embedded querier disagrees with the
//!    pinned identity ([`ErrorCode::IdentityMismatch`], fail closed —
//!    the connection stays up, the request never reaches the service).
//!    Matching requests map onto [`Session`]/[`Prepared`] handles: one
//!    session per distinct metadata (keyed by encoded bytes), prepared
//!    statements by server-issued handle.
//! 4. **Errors** — service failures map onto the wire taxonomy via
//!    [`WireError::from_sieve`]; protocol violations (bad frame, bad
//!    state) send [`ErrorCode::Protocol`] best-effort and close.
//!
//! All registries are per-connection, so a dropped connection releases
//! its sessions and prepared plans (and through them any pinned ∆
//! partitions) without global bookkeeping.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use sieve_core::backend::{MinidbBackend, SqlBackend};
use sieve_core::policy::{QueryMetadata, UserId};
use sieve_core::service::SieveService;
use sieve_core::session::{Prepared, Session};
use sieve_protocol::codec::{write_metadata, Writer};
use sieve_protocol::error::{ErrorCode, WireError};
use sieve_protocol::frame::{read_frame, write_frame};
use sieve_protocol::message::{ClientMessage, ServerMessage, PROTOCOL_VERSION};
use sieve_protocol::ProtocolError;

use crate::auth::Authenticator;
use crate::transport::Listener;

/// Monotonic counters the server exposes for tests and benches.
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted off the listener.
    pub connections: AtomicU64,
    /// Connections that authenticated successfully.
    pub authenticated: AtomicU64,
    /// Requests refused because the embedded querier disagreed with the
    /// connection's authenticated identity.
    pub identity_rejections: AtomicU64,
    /// `Auth` frames whose token did not resolve.
    pub auth_failures: AtomicU64,
    /// Requests (execute/prepare/execute-prepared/close) served to
    /// completion, success or typed error.
    pub requests: AtomicU64,
}

impl ServerStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A wire server fronting one [`SieveService`]. Transport-generic: hand
/// [`SieveServer::serve`] any [`Listener`] implementation.
pub struct SieveServer<B: SqlBackend = MinidbBackend> {
    service: SieveService<B>,
    auth: Arc<dyn Authenticator>,
    stats: Arc<ServerStats>,
}

impl<B: SqlBackend + 'static> SieveServer<B> {
    /// Front `service`, authenticating connections through `auth`.
    pub fn new(service: SieveService<B>, auth: impl Authenticator) -> Self {
        SieveServer {
            service,
            auth: Arc::new(auth),
            stats: Arc::new(ServerStats::default()),
        }
    }

    /// The service this server fronts.
    pub fn service(&self) -> &SieveService<B> {
        &self.service
    }

    /// Shared server counters (live while the server runs).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Run the accept loop on a background thread, one handler thread per
    /// connection. Returns a handle that joins everything once the
    /// listener shuts down (all connectors dropped) and every connection
    /// has closed.
    pub fn serve<L: Listener>(&self, listener: L) -> ServerHandle {
        let service = self.service.clone();
        let auth = Arc::clone(&self.auth);
        let stats = Arc::clone(&self.stats);
        let accept = std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while let Some(conn) = listener.accept() {
                ServerStats::bump(&stats.connections);
                let service = service.clone();
                let auth = Arc::clone(&auth);
                let stats = Arc::clone(&stats);
                handlers.push(std::thread::spawn(move || {
                    let mut conn = conn;
                    Connection::new(service, auth, stats).run(&mut conn);
                }));
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles for thousands of dead threads.
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        ServerHandle { accept: Some(accept) }
    }
}

/// Handle over a running server's accept loop. Join it (explicitly or by
/// drop) after dropping every connector and client connection.
pub struct ServerHandle {
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Wait for the accept loop and every connection handler to finish.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Per-connection protocol state machine.
struct Connection<B: SqlBackend> {
    service: SieveService<B>,
    auth: Arc<dyn Authenticator>,
    stats: Arc<ServerStats>,
    hello_done: bool,
    /// The authenticated querier, once `Auth` succeeds.
    querier: Option<UserId>,
    /// Session per distinct metadata this connection queries under,
    /// keyed by the metadata's canonical wire encoding.
    sessions: HashMap<Vec<u8>, Session<B>>,
    /// Prepared statements by server-issued handle.
    prepared: HashMap<u64, Prepared<B>>,
    next_statement: u64,
}

/// What a message handler tells the connection loop to do next.
enum Flow {
    /// Keep serving requests.
    Continue,
    /// Close the connection (after any reply already sent).
    Close,
}

impl<B: SqlBackend> Connection<B> {
    fn new(service: SieveService<B>, auth: Arc<dyn Authenticator>, stats: Arc<ServerStats>) -> Self {
        Connection {
            service,
            auth,
            stats,
            hello_done: false,
            querier: None,
            sessions: HashMap::new(),
            prepared: HashMap::new(),
            next_statement: 1,
        }
    }

    fn run<C: Read + Write>(&mut self, conn: &mut C) {
        loop {
            let payload = match read_frame(conn) {
                Ok(p) => p,
                Err(ProtocolError::ConnectionClosed) => return,
                Err(e) => {
                    // The stream is unusable; tell the peer why if the
                    // write half still works, then fail closed.
                    let _ = send(
                        conn,
                        &ServerMessage::Error(WireError::new(ErrorCode::Protocol, e.to_string())),
                    );
                    return;
                }
            };
            let msg = match ClientMessage::decode(&payload) {
                Ok(m) => m,
                Err(e) => {
                    let _ = send(
                        conn,
                        &ServerMessage::Error(WireError::new(ErrorCode::Protocol, e.to_string())),
                    );
                    return;
                }
            };
            match self.handle(conn, msg) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Close) => return,
                // Reply failed to send: the connection is gone.
                Err(_) => return,
            }
        }
    }

    fn handle<C: Read + Write>(
        &mut self,
        conn: &mut C,
        msg: ClientMessage,
    ) -> Result<Flow, ProtocolError> {
        match msg {
            ClientMessage::Hello { version } => {
                if self.hello_done {
                    return self.protocol_violation(conn, "duplicate Hello");
                }
                if version != PROTOCOL_VERSION {
                    send(
                        conn,
                        &ServerMessage::Error(WireError::new(
                            ErrorCode::Protocol,
                            format!(
                                "version mismatch: server speaks {PROTOCOL_VERSION}, client {version}"
                            ),
                        )),
                    )?;
                    return Ok(Flow::Close);
                }
                self.hello_done = true;
                send(conn, &ServerMessage::HelloAck { version: PROTOCOL_VERSION })?;
                Ok(Flow::Continue)
            }
            ClientMessage::Auth { token } => {
                if !self.hello_done || self.querier.is_some() {
                    return self.protocol_violation(conn, "Auth out of order");
                }
                match self.auth.authenticate(&token) {
                    Some(querier) => {
                        self.querier = Some(querier);
                        ServerStats::bump(&self.stats.authenticated);
                        send(conn, &ServerMessage::AuthAck { querier })?;
                        Ok(Flow::Continue)
                    }
                    None => {
                        ServerStats::bump(&self.stats.auth_failures);
                        send(
                            conn,
                            &ServerMessage::Error(WireError::new(
                                ErrorCode::AuthFailed,
                                "unknown token",
                            )),
                        )?;
                        Ok(Flow::Close)
                    }
                }
            }
            ClientMessage::Execute { metadata, sql } => {
                ServerStats::bump(&self.stats.requests);
                if self.querier.is_none() {
                    return self.not_authenticated(conn);
                }
                let session = match self.session_for(conn, &metadata)? {
                    Some(s) => s,
                    None => return Ok(Flow::Continue),
                };
                let reply = match session.execute_sql(&sql) {
                    Ok(rows) => ServerMessage::Rows(rows),
                    Err(e) => ServerMessage::Error(WireError::from_sieve(&e)),
                };
                send(conn, &reply)?;
                Ok(Flow::Continue)
            }
            ClientMessage::Prepare { metadata, sql } => {
                ServerStats::bump(&self.stats.requests);
                if self.querier.is_none() {
                    return self.not_authenticated(conn);
                }
                let session = match self.session_for(conn, &metadata)? {
                    Some(s) => s,
                    None => return Ok(Flow::Continue),
                };
                match session.prepare_sql(&sql) {
                    Ok(prepared) => {
                        let statement = self.next_statement;
                        self.next_statement += 1;
                        self.prepared.insert(statement, prepared);
                        send(conn, &ServerMessage::Prepared { statement })?;
                    }
                    Err(e) => {
                        send(conn, &ServerMessage::Error(WireError::from_sieve(&e)))?;
                    }
                }
                Ok(Flow::Continue)
            }
            ClientMessage::ExecutePrepared { statement } => {
                ServerStats::bump(&self.stats.requests);
                if self.querier.is_none() {
                    return self.not_authenticated(conn);
                }
                let reply = match self.prepared.get(&statement) {
                    Some(prepared) => match prepared.execute() {
                        Ok(rows) => ServerMessage::Rows(rows),
                        Err(e) => ServerMessage::Error(WireError::from_sieve(&e)),
                    },
                    None => ServerMessage::Error(WireError::new(
                        ErrorCode::UnknownStatementHandle,
                        format!("statement {statement} not prepared on this connection"),
                    )),
                };
                send(conn, &reply)?;
                Ok(Flow::Continue)
            }
            ClientMessage::ClosePrepared { statement } => {
                ServerStats::bump(&self.stats.requests);
                if self.querier.is_none() {
                    return self.not_authenticated(conn);
                }
                let reply = if self.prepared.remove(&statement).is_some() {
                    ServerMessage::Closed { statement }
                } else {
                    ServerMessage::Error(WireError::new(
                        ErrorCode::UnknownStatementHandle,
                        format!("statement {statement} not prepared on this connection"),
                    ))
                };
                send(conn, &reply)?;
                Ok(Flow::Continue)
            }
            ClientMessage::Goodbye => {
                send(conn, &ServerMessage::Goodbye)?;
                Ok(Flow::Close)
            }
        }
    }

    /// Resolve the session for a request's metadata. Callers have already
    /// verified the connection is authenticated. `Ok(None)` means the
    /// request was refused (identity mismatch) and a typed error frame
    /// was already sent; the connection stays up.
    fn session_for<C: Read + Write>(
        &mut self,
        conn: &mut C,
        metadata: &QueryMetadata,
    ) -> Result<Option<&Session<B>>, ProtocolError> {
        let querier = match self.querier {
            Some(q) => q,
            None => {
                // Unreachable by construction; refuse defensively rather
                // than trust the state machine blindly.
                self.not_authenticated(conn)?;
                return Ok(None);
            }
        };
        if metadata.querier != querier {
            // Fail closed: the embedded identity disagrees with the one
            // this connection authenticated as. Never execute under
            // either identity; refuse with a typed error.
            ServerStats::bump(&self.stats.identity_rejections);
            send(
                conn,
                &ServerMessage::Error(WireError::new(
                    ErrorCode::IdentityMismatch,
                    format!(
                        "request querier {} does not match authenticated querier {querier}",
                        metadata.querier
                    ),
                )),
            )?;
            return Ok(None);
        }
        let key = metadata_key(metadata);
        let session = self
            .sessions
            .entry(key)
            .or_insert_with(|| self.service.session(metadata.clone()));
        Ok(Some(session))
    }

    fn not_authenticated<C: Read + Write>(&self, conn: &mut C) -> Result<Flow, ProtocolError> {
        send(
            conn,
            &ServerMessage::Error(WireError::new(
                ErrorCode::NotAuthenticated,
                "request before successful Auth",
            )),
        )?;
        Ok(Flow::Close)
    }

    fn protocol_violation<C: Read + Write>(
        &self,
        conn: &mut C,
        what: &str,
    ) -> Result<Flow, ProtocolError> {
        send(
            conn,
            &ServerMessage::Error(WireError::new(ErrorCode::Protocol, what)),
        )?;
        Ok(Flow::Close)
    }
}

/// Canonical registry key for a session: the metadata's wire encoding.
fn metadata_key(qm: &QueryMetadata) -> Vec<u8> {
    let mut w = Writer::new();
    write_metadata(&mut w, qm);
    w.into_bytes()
}

fn send<C: Read + Write>(conn: &mut C, msg: &ServerMessage) -> Result<(), ProtocolError> {
    write_frame(conn, &msg.encode())
}
