//! Transport abstraction and the in-process loopback implementation.
//!
//! The server is transport-generic: it accepts anything implementing
//! [`Listener`], whose connections are plain blocking byte streams
//! (`Read + Write`). This PR ships one transport — an in-process
//! **loopback** built on byte pipes — so client, protocol, and server can
//! be exercised end-to-end without sockets; a TCP listener slots in later
//! by implementing the same two traits over `TcpListener`/`TcpStream`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// A server-side connection source. `accept` blocks until a client
/// connects and returns `None` when the transport shuts down (all
/// connectors dropped), at which point the accept loop exits cleanly.
pub trait Listener: Send + 'static {
    /// The byte stream this transport produces.
    type Conn: Read + Write + Send + 'static;

    /// Block for the next inbound connection; `None` means shutdown.
    fn accept(&self) -> Option<Self::Conn>;
}

/// One direction of a loopback connection: a bounded-latency,
/// unbounded-capacity in-memory byte queue. Frames are written whole and
/// consumed promptly by the request/response discipline, so the queue
/// stays shallow in practice.
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

struct PipeState {
    buf: VecDeque<u8>,
    /// Writer end dropped: reader drains the buffer, then sees EOF.
    write_closed: bool,
    /// Reader end dropped: further writes fail with `BrokenPipe`.
    read_closed: bool,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                read_closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.lock();
        while st.buf.is_empty() {
            if st.write_closed {
                return Ok(0);
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let n = st.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = st.buf.pop_front().unwrap_or_default();
        }
        Ok(n)
    }

    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.lock();
        if st.read_closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        st.buf.extend(data.iter().copied());
        self.cv.notify_all();
        Ok(data.len())
    }

    fn close_write(&self) {
        self.lock().write_closed = true;
        self.cv.notify_all();
    }

    fn close_read(&self) {
        self.lock().read_closed = true;
        self.cv.notify_all();
    }
}

/// One end of an in-process duplex byte stream. Dropping an end delivers
/// EOF to the peer's reads and `BrokenPipe` to its writes.
pub struct LoopbackConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl Read for LoopbackConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for LoopbackConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        self.tx.close_write();
        self.rx.close_read();
    }
}

/// Build one duplex loopback connection: two ends, each reading what the
/// other writes. Usable standalone (tests can speak raw protocol).
pub fn loopback_pair() -> (LoopbackConn, LoopbackConn) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    (
        LoopbackConn { rx: Arc::clone(&b_to_a), tx: Arc::clone(&a_to_b) },
        LoopbackConn { rx: a_to_b, tx: b_to_a },
    )
}

/// The client-side handle of a loopback transport: `connect` yields the
/// client end of a fresh duplex stream whose server end is queued for the
/// listener. Clone freely; the listener shuts down when the last clone
/// drops.
#[derive(Clone)]
pub struct LoopbackConnector {
    queue: Sender<LoopbackConn>,
}

impl LoopbackConnector {
    /// Open a new connection to the paired [`LoopbackListener`]. Fails
    /// when the listener is gone.
    pub fn connect(&self) -> io::Result<LoopbackConn> {
        let (client, server) = loopback_pair();
        self.queue
            .send(server)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener gone"))?;
        Ok(client)
    }
}

/// The server-side handle of a loopback transport.
pub struct LoopbackListener {
    queue: Receiver<LoopbackConn>,
}

impl Listener for LoopbackListener {
    type Conn = LoopbackConn;

    fn accept(&self) -> Option<LoopbackConn> {
        self.queue.recv().ok()
    }
}

/// Build a loopback transport: the listener side for the server's accept
/// loop and a connector clients dial through.
pub fn loopback() -> (LoopbackListener, LoopbackConnector) {
    let (tx, rx) = channel();
    (LoopbackListener { queue: rx }, LoopbackConnector { queue: tx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trip_and_eof() {
        let (mut a, mut b) = loopback_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        drop(a);
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_after_peer_drop_is_broken_pipe() {
        let (mut a, b) = loopback_pair();
        drop(b);
        let err = a.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn connector_queues_connections() {
        let (listener, connector) = loopback();
        let mut client = connector.connect().unwrap();
        let mut server = listener.accept().unwrap();
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        drop(connector);
        assert!(listener.accept().is_none());
    }
}
