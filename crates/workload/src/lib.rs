//! `sieve-workload` — datasets, policies, and queries for the SIEVE
//! reproduction (paper Section 7.1).
//!
//! * [`tippers`] — a seeded generator reproducing the published statistics
//!   of the TIPPERS WiFi dataset (profile distribution, affinity groups,
//!   diurnal presence, AP locality), scalable from test size to paper
//!   scale (36K devices / 3.9M events at `scale = 1.0`).
//! * [`mall`] — the Mall dataset of Experiment 5 (35 shops, six types,
//!   regular/irregular customers, interest-driven policies).
//! * [`profiles`] — the five campus user profiles and their published
//!   counts.
//! * [`policy_gen`] — the unconcerned/advanced policy recipe of
//!   Section 7.1 over the TIPPERS dataset.
//! * [`query_gen`] — the SmartBench-style Q1/Q2/Q3 templates at three
//!   selectivity classes.
//! * [`traffic`] — multi-querier traffic batches (one query per distinct
//!   querier) feeding `sieve_core`'s batched evaluation.

#![warn(missing_docs)]

pub mod mall;
pub mod policy_gen;
pub mod profiles;
pub mod query_gen;
pub mod tippers;
pub mod traffic;

pub use mall::{MallConfig, MallDataset, MALL_TABLE};
pub use policy_gen::{corpus_stats, generate_policies, PolicyGenConfig};
pub use profiles::UserProfile;
pub use query_gen::{generate_query, workload, QueryClass, Selectivity};
pub use tippers::{generate as generate_tippers, TippersConfig, TippersDataset, WIFI_TABLE};
pub use traffic::{multi_querier_traffic, TrafficConfig};
