//! Mall synthetic dataset (paper Section 7.1, Experiment 5).
//!
//! The paper generated Mall with the SmartBench/IoT data-generation tool:
//! 1.7M WiFi connectivity events from 2,651 customer devices across 35
//! shops of six types, plus 19,364 policies (≈551 per shop-querier). This
//! module reproduces that recipe: shoppers visit shops (regulars favour a
//! few, irregulars roam), and policies grant *shops* access to customer
//! data per the three rules of Section 7.1.

use minidb::value::{DataType, Value};
use minidb::{Database, DbResult, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sieve_core::filter::GroupDirectory;
use sieve_core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, UserId,
};

/// Connectivity fact table (paper Table 3: "WiFi Connectivity").
pub const MALL_TABLE: &str = "wifi_connectivity";

/// Shop-querier ids start here to keep them disjoint from customer ids.
pub const SHOP_QUERIER_BASE: i64 = 10_000_000;

/// Shop-type group ids (used by irregular-customer policies).
pub const SHOP_TYPE_GROUP_BASE: i64 = 2_000_000;

/// The six shop types of the paper's categorization.
pub const SHOP_TYPES: [&str; 6] = [
    "clothing", "food", "electronics", "arcade", "movies", "grocery",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct MallConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of paper scale (1.0 ≈ 2,651 customers / 1.7M events).
    pub scale: f64,
    /// Number of shops (paper: 35).
    pub shops: u32,
    /// Observation days.
    pub days: u32,
}

impl Default for MallConfig {
    fn default() -> Self {
        MallConfig {
            seed: 11,
            scale: 0.05,
            shops: 35,
            days: 60,
        }
    }
}

/// One customer of the mall.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Customer/device id (`owner` in the fact table).
    pub id: UserId,
    /// Regulars visit a favourite subset of shops on most days.
    pub regular: bool,
    /// Favourite shops (non-empty for regulars).
    pub favourites: Vec<i64>,
    /// Interest category index into [`SHOP_TYPES`], if any.
    pub interest: Option<usize>,
}

/// The generated mall dataset.
#[derive(Debug)]
pub struct MallDataset {
    /// Customers in id order.
    pub customers: Vec<Customer>,
    /// Shop ids.
    pub shops: Vec<i64>,
    /// Querier group directory: one group per shop type, whose "members"
    /// are the shop-querier ids of that type.
    pub groups: GroupDirectory,
    /// First observation date (days since epoch).
    pub start_date: i32,
    /// Observation days.
    pub days: u32,
    /// Events generated.
    pub events: u64,
    /// Policies generated (Section 7.1's three rules).
    pub policies: Vec<Policy>,
}

impl MallDataset {
    /// Querier id of a shop.
    pub fn shop_querier(shop: i64) -> i64 {
        SHOP_QUERIER_BASE + shop
    }

    /// Type index of a shop id.
    pub fn shop_type(shop: i64) -> usize {
        (shop as usize) % SHOP_TYPES.len()
    }
}

/// Generate the mall dataset, load it into the database, and produce the
/// policy corpus (policies are returned, not yet registered, so callers
/// can feed them incrementally for the scalability experiment).
pub fn generate(db: &mut Database, config: &MallConfig) -> DbResult<MallDataset> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start_date = Value::parse_date("2020-01-06").expect("valid date");

    db.create_table(TableSchema::of(
        "mall_users",
        &[
            ("id", DataType::Int),
            ("device", DataType::Str),
            ("interest", DataType::Str),
        ],
    ))?;
    db.create_table(TableSchema::of(
        "shop",
        &[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("type", DataType::Str),
        ],
    ))?;
    db.create_table(TableSchema::of(
        MALL_TABLE,
        &[
            ("id", DataType::Int),
            ("shop_id", DataType::Int),
            ("owner", DataType::Int),
            ("obs_time", DataType::Time),
            ("obs_date", DataType::Date),
        ],
    ))?;

    // Shops and the shop-type querier groups.
    let mut shops = Vec::new();
    let mut groups = GroupDirectory::new();
    for s in 0..config.shops as i64 {
        shops.push(s);
        let ty = MallDataset::shop_type(s);
        db.insert(
            "shop",
            vec![
                Value::Int(s),
                Value::str(format!("shop_{s}")),
                Value::str(SHOP_TYPES[ty]),
            ],
        )?;
        groups.add_member(SHOP_TYPE_GROUP_BASE + ty as i64, MallDataset::shop_querier(s));
    }

    // Customers: ~40% regular (per typical mall loyalty splits).
    let n_customers = ((2_651.0 * config.scale).round() as u32).max(20);
    let mut customers = Vec::new();
    for id in 0..n_customers as i64 {
        let regular = rng.gen_bool(0.4);
        let favourites = if regular {
            let n = rng.gen_range(1..=3);
            (0..n)
                .map(|_| shops[rng.gen_range(0..shops.len())])
                .collect()
        } else {
            Vec::new()
        };
        let interest = rng.gen_bool(0.5).then(|| rng.gen_range(0..SHOP_TYPES.len()));
        db.insert(
            "mall_users",
            vec![
                Value::Int(id),
                Value::str(format!("cust_{id:05x}")),
                Value::str(interest.map(|i| SHOP_TYPES[i]).unwrap_or("none")),
            ],
        )?;
        customers.push(Customer {
            id,
            regular,
            favourites,
            interest,
        });
    }

    // Connectivity events: open hours 10:00–22:00.
    let open = 10 * 3600u32;
    let close = 22 * 3600u32;
    let mut event_id = 0i64;
    let mut rows = Vec::new();
    for c in &customers {
        let presence = if c.regular { 0.6 } else { 0.15 };
        for day in 0..config.days {
            if !rng.gen_bool(presence) {
                continue;
            }
            let date = start_date + day as i32;
            let n_visits = rng.gen_range(1..=4);
            for _ in 0..n_visits {
                let shop = if c.regular && !c.favourites.is_empty() && rng.gen_bool(0.7) {
                    c.favourites[rng.gen_range(0..c.favourites.len())]
                } else if let Some(i) = c.interest.filter(|_| rng.gen_bool(0.4)) {
                    // Interested customers drift toward their category.
                    let of_type: Vec<i64> = shops
                        .iter()
                        .copied()
                        .filter(|&s| MallDataset::shop_type(s) == i)
                        .collect();
                    of_type[rng.gen_range(0..of_type.len())]
                } else {
                    shops[rng.gen_range(0..shops.len())]
                };
                let t = rng.gen_range(open..close);
                // A visit produces a few association events.
                for k in 0..rng.gen_range(2..=6) {
                    rows.push(vec![
                        Value::Int(event_id),
                        Value::Int(shop),
                        Value::Int(c.id),
                        Value::Time((t + k * 300).min(86_399)),
                        Value::Date(date),
                    ]);
                    event_id += 1;
                }
            }
        }
    }
    let events = rows.len() as u64;
    db.insert_all(MALL_TABLE, rows)?;
    for col in ["owner", "shop_id", "obs_time", "obs_date"] {
        db.create_index(MALL_TABLE, col)?;
    }
    db.analyze(MALL_TABLE)?;

    // --- policies (Section 7.1, Mall rules) -------------------------------
    // The paper's corpus averages ~7.3 policies/customer (19,364 for
    // 2,651 customers, ~551 per shop-querier); each rule below emits a
    // few policies per customer to land in the same regime.
    let mut policies = Vec::new();
    for c in &customers {
        if c.regular {
            // "Regular customers allowed shops they visit the most to have
            // access to their location during open hours." Each favourite
            // gets an open-hours grant plus narrower weekday/evening
            // variants (regulars fine-tune, like the campus advanced
            // users).
            for &shop in &c.favourites {
                let querier = QuerierSpec::User(MallDataset::shop_querier(shop));
                policies.push(Policy::new(
                    c.id,
                    MALL_TABLE,
                    querier.clone(),
                    "Promotions",
                    vec![ObjectCondition::new(
                        "obs_time",
                        CondPredicate::between(Value::Time(open), Value::Time(close)),
                    )],
                ));
                let t0 = rng.gen_range(open..close - 3 * 3600);
                policies.push(Policy::new(
                    c.id,
                    MALL_TABLE,
                    querier.clone(),
                    "Sales",
                    vec![ObjectCondition::new(
                        "obs_time",
                        CondPredicate::between(Value::Time(t0), Value::Time(t0 + 3 * 3600)),
                    )],
                ));
                let week = start_date + rng.gen_range(0..config.days.max(8) - 7) as i32;
                policies.push(Policy::new(
                    c.id,
                    MALL_TABLE,
                    querier,
                    "Promotions",
                    vec![ObjectCondition::new(
                        "obs_date",
                        CondPredicate::between(Value::Date(week), Value::Date(week + 6)),
                    )],
                ));
            }
        } else {
            // "Irregular customers shared their data only with specific
            // shop types depending on if there were sales or discounts."
            for _ in 0..rng.gen_range(2..=4) {
                let ty = rng.gen_range(0..SHOP_TYPES.len());
                let sale_start = start_date + rng.gen_range(0..config.days.max(8) - 7) as i32;
                policies.push(Policy::new(
                    c.id,
                    MALL_TABLE,
                    QuerierSpec::Group(SHOP_TYPE_GROUP_BASE + ty as i64),
                    "Sales",
                    vec![ObjectCondition::new(
                        "obs_date",
                        CondPredicate::between(
                            Value::Date(sale_start),
                            Value::Date(sale_start + 6),
                        ),
                    )],
                ));
            }
        }
        // "If a customer expressed an interest in a particular shop
        // category … allowed access … for a short period (lightning
        // sales)."
        if let Some(i) = c.interest {
            for _ in 0..rng.gen_range(2..=3) {
                let day = start_date + rng.gen_range(0..config.days) as i32;
                let t0 = rng.gen_range(open..close - 2 * 3600);
                policies.push(Policy::new(
                    c.id,
                    MALL_TABLE,
                    QuerierSpec::Group(SHOP_TYPE_GROUP_BASE + i as i64),
                    "Lightning",
                    vec![
                        ObjectCondition::new("obs_date", CondPredicate::Eq(Value::Date(day))),
                        ObjectCondition::new(
                            "obs_time",
                            CondPredicate::between(Value::Time(t0), Value::Time(t0 + 2 * 3600)),
                        ),
                    ],
                ));
            }
        }
    }

    Ok(MallDataset {
        customers,
        shops,
        groups,
        start_date,
        days: config.days,
        events,
        policies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::DbProfile;
    use sieve_core::policy::QueryMetadata;

    fn small() -> (Database, MallDataset) {
        let mut db = Database::new(DbProfile::PostgresLike);
        let ds = generate(
            &mut db,
            &MallConfig {
                seed: 3,
                scale: 0.03,
                shops: 35,
                days: 30,
            },
        )
        .unwrap();
        (db, ds)
    }

    #[test]
    fn shapes_match_paper_recipe() {
        let (db, ds) = small();
        assert_eq!(ds.shops.len(), 35);
        assert!(ds.events > 500);
        assert_eq!(db.table(MALL_TABLE).unwrap().table.len() as u64, ds.events);
        // Every customer contributes 1–5 policies.
        assert!(ds.policies.len() >= ds.customers.len() / 2);
    }

    #[test]
    fn policies_target_shop_queriers() {
        let (_, ds) = small();
        let mut shop_targets = 0;
        let mut group_targets = 0;
        for p in &ds.policies {
            match p.querier {
                QuerierSpec::User(u) => {
                    assert!(u >= SHOP_QUERIER_BASE);
                    shop_targets += 1;
                }
                QuerierSpec::Group(g) => {
                    assert!(g >= SHOP_TYPE_GROUP_BASE);
                    group_targets += 1;
                }
            }
        }
        assert!(shop_targets > 0, "regular-customer policies exist");
        assert!(group_targets > 0, "irregular/interest policies exist");
    }

    #[test]
    fn shop_queriers_receive_policies_via_groups() {
        let (_, ds) = small();
        let shop = ds.shops[0];
        let qm = QueryMetadata::new(MallDataset::shop_querier(shop), "Sales");
        let relevant = sieve_core::filter::relevant_policies(
            ds.policies.iter(),
            MALL_TABLE,
            &qm,
            &ds.groups,
        );
        assert!(
            !relevant.is_empty(),
            "shop queriers must match group policies of their type"
        );
    }

    #[test]
    fn deterministic() {
        let (_, a) = small();
        let (_, b) = small();
        assert_eq!(a.events, b.events);
        assert_eq!(a.policies.len(), b.policies.len());
    }
}
