//! Profile-based policy generation for the campus dataset (paper
//! Section 7.1, "Policy Generation").
//!
//! Users split into *unconcerned* (subscribe to the administrator's two
//! default policies) and *advanced* (define ~40 policies each over device,
//! time, group, profile, and location), per the Section 2.1 privacy-profile
//! distribution. Policies grant access to groups, profiles, or specific
//! users, for purposes drawn from the campus purpose list.

use crate::profiles::{advanced_fraction, UserProfile};
use crate::tippers::{Device, TippersDataset, AP_BASE, NUM_APS, WIFI_TABLE};
use minidb::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sieve_core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec};

/// Purposes used on campus (after Lee & Kobsa's purpose taxonomy, which
/// the paper cites for the purpose dimension).
pub const PURPOSES: [&str; 5] = ["Analytics", "Attendance", "Safety", "Social", "Commercial"];

/// Working hours used by the default policies.
pub const WORK_START: u32 = 9 * 3600;
/// End of working hours.
pub const WORK_END: u32 = 17 * 3600;

/// Policy-generation configuration.
#[derive(Debug, Clone)]
pub struct PolicyGenConfig {
    /// RNG seed (independent from the dataset seed).
    pub seed: u64,
    /// Mean number of policies an advanced user defines (paper: 40).
    pub advanced_policies_mean: u32,
    /// Generate policies only for owners in this list (None = everyone).
    /// The scalability experiments use this to grow the corpus
    /// incrementally.
    pub owners: Option<Vec<i64>>,
}

impl Default for PolicyGenConfig {
    fn default() -> Self {
        PolicyGenConfig {
            seed: 23,
            advanced_policies_mean: 40,
            owners: None,
        }
    }
}

/// Whether a user is unconcerned or advanced, deterministically derived
/// from the RNG stream.
fn is_advanced(rng: &mut StdRng) -> bool {
    rng.gen_bool(advanced_fraction())
}

fn random_time_window(rng: &mut StdRng) -> ObjectCondition {
    // 1–4 hour windows within the waking day.
    let start = rng.gen_range(7 * 3600..19 * 3600);
    let len = rng.gen_range(1..=4) * 3600;
    ObjectCondition::new(
        "ts_time",
        CondPredicate::between(Value::Time(start), Value::Time((start + len).min(86_399))),
    )
}

fn random_date_window(rng: &mut StdRng, ds: &TippersDataset) -> ObjectCondition {
    let (lo, hi) = ds.date_range();
    let span = (hi - lo).max(7);
    let start = lo + rng.gen_range(0..span - 6);
    let len = rng.gen_range(7..=28).min(hi - start);
    ObjectCondition::new(
        "ts_date",
        CondPredicate::between(Value::Date(start), Value::Date(start + len)),
    )
}

fn nearby_ap(rng: &mut StdRng, device: &Device) -> ObjectCondition {
    // Advanced users scope policies to locations they frequent.
    let delta = rng.gen_range(0..4);
    let ap = AP_BASE + ((device.home_ap - AP_BASE + delta).rem_euclid(NUM_APS as i64));
    ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(ap)))
}

/// The two default policies of an unconcerned user (Section 7.1):
///
/// 1. data collected during working hours is visible to the user's
///    affinity group;
/// 2. data collected at any time is visible to members sharing both the
///    group and the profile — approximated by the profile group, the
///    coarser of the two memberships.
pub fn default_policies(device: &Device) -> Vec<Policy> {
    vec![
        Policy::new(
            device.id,
            WIFI_TABLE,
            QuerierSpec::Group(device.group),
            "Any",
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(WORK_START), Value::Time(WORK_END)),
            )],
        ),
        Policy::new(
            device.id,
            WIFI_TABLE,
            QuerierSpec::Group(device.profile.group_id()),
            "Any",
            vec![],
        ),
    ]
}

/// Generate the policy corpus for a TIPPERS dataset.
pub fn generate_policies(ds: &TippersDataset, config: &PolicyGenConfig) -> Vec<Policy> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let non_visitors: Vec<&Device> = ds
        .devices
        .iter()
        .filter(|d| d.profile != UserProfile::Visitor)
        .collect();
    for device in &ds.devices {
        if let Some(owners) = &config.owners {
            if !owners.contains(&device.id) {
                // Keep the RNG stream aligned so subsets are prefixes of
                // the full corpus: draw the same decisions, drop the
                // output.
                let _ = consume_for_device(&mut rng, device, ds, &non_visitors, config);
                continue;
            }
        }
        out.extend(consume_for_device(&mut rng, device, ds, &non_visitors, config));
    }
    out
}

fn consume_for_device(
    rng: &mut StdRng,
    device: &Device,
    ds: &TippersDataset,
    non_visitors: &[&Device],
    config: &PolicyGenConfig,
) -> Vec<Policy> {
    // Visitors keep the defaults only (they barely appear in the data).
    if device.profile == UserProfile::Visitor || !is_advanced(rng) {
        return default_policies(device);
    }
    let mean = config.advanced_policies_mean.max(2);
    let n = rng.gen_range(mean / 2..=mean * 3 / 2);
    let mut out = default_policies(device);
    // Advanced users govern a handful of distinct grantees ("John", "my
    // classmates", "faculty") and write several situation-specific
    // policies per grantee — which is what gives queriers multiple
    // policies per owner and lets guards form real partitions.
    let n_targets = rng.gen_range(3..=8usize);
    // Each grantee is granted for one consistent purpose (one shares
    // attendance data with a professor, social data with friends, …);
    // purpose-scattering would dissolve the per-owner policy clusters the
    // paper's partitions rely on.
    let targets: Vec<(QuerierSpec, &str)> = (0..n_targets)
        .map(|_| {
            let spec = match rng.gen_range(0..10) {
                0..=3 => QuerierSpec::Group(rng.gen_range(0..ds.num_groups) as i64),
                4..=6 => {
                    let p = UserProfile::ALL[rng.gen_range(1..UserProfile::ALL.len())];
                    QuerierSpec::Group(p.group_id())
                }
                _ => {
                    let other = non_visitors[rng.gen_range(0..non_visitors.len())];
                    QuerierSpec::User(other.id)
                }
            };
            (spec, PURPOSES[rng.gen_range(0..PURPOSES.len())])
        })
        .collect();
    for _ in 0..n {
        let (querier, purpose) = targets[rng.gen_range(0..targets.len())].clone();
        // Two conditions per policy on average (time and location), as in
        // the Section 2.1 estimate; sometimes a date window instead.
        let mut conditions = vec![random_time_window(rng)];
        match rng.gen_range(0..10) {
            0..=5 => conditions.push(nearby_ap(rng, device)),
            6..=7 => conditions.push(random_date_window(rng, ds)),
            8 => {
                conditions.push(nearby_ap(rng, device));
                conditions.push(random_date_window(rng, ds));
            }
            _ => {}
        }
        out.push(Policy::new(
            device.id,
            WIFI_TABLE,
            querier,
            purpose,
            conditions,
        ));
    }
    out
}

/// Summary statistics over a generated corpus (drives Table 6 style
/// reporting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Total policies.
    pub total: usize,
    /// Mean policies per owner.
    pub per_owner_mean: f64,
    /// Mean object conditions per policy (incl. the owner condition).
    pub conditions_mean: f64,
}

/// Compute corpus statistics.
pub fn corpus_stats(policies: &[Policy]) -> CorpusStats {
    if policies.is_empty() {
        return CorpusStats {
            total: 0,
            per_owner_mean: 0.0,
            conditions_mean: 0.0,
        };
    }
    let mut owners: Vec<i64> = policies.iter().map(|p| p.owner).collect();
    owners.sort_unstable();
    owners.dedup();
    let conds: usize = policies.iter().map(|p| p.object_conditions().len()).sum();
    CorpusStats {
        total: policies.len(),
        per_owner_mean: policies.len() as f64 / owners.len() as f64,
        conditions_mean: conds as f64 / policies.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tippers::{generate, TippersConfig};
    use minidb::{Database, DbProfile};
    use sieve_core::filter::relevant_policies;
    use sieve_core::policy::QueryMetadata;

    fn dataset() -> (Database, TippersDataset) {
        let mut db = Database::new(DbProfile::MySqlLike);
        let ds = generate(
            &mut db,
            &TippersConfig {
                seed: 1,
                scale: 0.01,
                days: 45,
            },
        )
        .unwrap();
        (db, ds)
    }

    #[test]
    fn corpus_has_defaults_and_advanced() {
        let (_, ds) = dataset();
        let policies = generate_policies(&ds, &PolicyGenConfig::default());
        let stats = corpus_stats(&policies);
        // Every device defines at least the two defaults.
        assert!(stats.total >= ds.devices.len() * 2);
        // Advanced users push the mean well above 2.
        assert!(stats.per_owner_mean > 2.5, "mean {}", stats.per_owner_mean);
        // ~2 conditions + owner condition.
        assert!((2.0..4.5).contains(&stats.conditions_mean));
    }

    #[test]
    fn queriers_accumulate_policies() {
        let (_, ds) = dataset();
        let policies = generate_policies(&ds, &PolicyGenConfig::default());
        // A faculty member should be able to access *some* data: their
        // profile group and affinity group collect default policies.
        let faculty = ds
            .devices_of(UserProfile::Faculty)
            .next()
            .expect("some faculty");
        let qm = QueryMetadata::new(faculty.id, "Analytics");
        let relevant =
            relevant_policies(policies.iter(), WIFI_TABLE, &qm, &ds.groups);
        assert!(
            relevant.len() > 10,
            "faculty querier only matched {} policies",
            relevant.len()
        );
    }

    #[test]
    fn owner_subset_is_prefix_consistent() {
        let (_, ds) = dataset();
        let full = generate_policies(&ds, &PolicyGenConfig::default());
        let owners: Vec<i64> = ds.devices.iter().take(10).map(|d| d.id).collect();
        let subset = generate_policies(
            &ds,
            &PolicyGenConfig {
                owners: Some(owners.clone()),
                ..Default::default()
            },
        );
        // The subset equals the full corpus filtered to those owners.
        let filtered: Vec<&Policy> =
            full.iter().filter(|p| owners.contains(&p.owner)).collect();
        assert_eq!(subset.len(), filtered.len());
        for (a, b) in subset.iter().zip(filtered) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn deterministic() {
        let (_, ds) = dataset();
        let a = generate_policies(&ds, &PolicyGenConfig::default());
        let b = generate_policies(&ds, &PolicyGenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn default_policies_shape() {
        let (_, ds) = dataset();
        let d = &ds.devices[0];
        let ps = default_policies(d);
        assert_eq!(ps.len(), 2);
        assert!(matches!(ps[0].querier, QuerierSpec::Group(g) if g == d.group));
        assert_eq!(ps[1].conditions.len(), 0);
    }
}
