//! User profiles of the smart-campus scenario (paper Section 7.1).
//!
//! The paper classifies the 36,436 devices observed in the TIPPERS
//! deployment into five profiles by connectivity pattern: 31,796 visitors,
//! 1,029 staff, 388 faculty, 1,795 undergraduates, and 1,428 graduates.
//! Profiles drive both event generation (who shows up when) and policy
//! generation (defaults per profile; queriers grouped by profile).

/// Campus user profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UserProfile {
    /// Rarely-seen passerby devices (< 5% of days).
    Visitor,
    /// Staff (office-bound, regular hours).
    Staff,
    /// Faculty (office + classroom).
    Faculty,
    /// Undergraduate students (classroom-heavy).
    Undergrad,
    /// Graduate students (lab-heavy, long hours).
    Grad,
}

impl UserProfile {
    /// All profiles, visitor first.
    pub const ALL: [UserProfile; 5] = [
        UserProfile::Visitor,
        UserProfile::Staff,
        UserProfile::Faculty,
        UserProfile::Undergrad,
        UserProfile::Grad,
    ];

    /// Device counts from the paper's classification at full scale.
    pub fn paper_count(self) -> u32 {
        match self {
            UserProfile::Visitor => 31_796,
            UserProfile::Staff => 1_029,
            UserProfile::Faculty => 388,
            UserProfile::Undergrad => 1_795,
            UserProfile::Grad => 1_428,
        }
    }

    /// Fraction of days a device of this profile shows up on campus.
    pub fn presence_rate(self) -> f64 {
        match self {
            UserProfile::Visitor => 0.03, // < 5% of days, per the paper
            UserProfile::Staff => 0.75,
            UserProfile::Faculty => 0.65,
            UserProfile::Undergrad => 0.55,
            UserProfile::Grad => 0.80,
        }
    }

    /// Typical (start, end) seconds-since-midnight of a day on campus.
    pub fn day_window(self) -> (u32, u32) {
        match self {
            UserProfile::Visitor => (10 * 3600, 16 * 3600),
            UserProfile::Staff => (8 * 3600, 17 * 3600),
            UserProfile::Faculty => (9 * 3600, 18 * 3600),
            UserProfile::Undergrad => (9 * 3600, 17 * 3600),
            UserProfile::Grad => (10 * 3600, 21 * 3600),
        }
    }

    /// Mean connectivity events per present day (AP association logs).
    pub fn events_per_day(self) -> f64 {
        match self {
            UserProfile::Visitor => 3.0,
            UserProfile::Staff => 14.0,
            UserProfile::Faculty => 12.0,
            UserProfile::Undergrad => 10.0,
            UserProfile::Grad => 16.0,
        }
    }

    /// Stable group id for the profile-level group (e.g. "all faculty").
    /// Profile groups occupy ids above [`PROFILE_GROUP_BASE`].
    pub fn group_id(self) -> i64 {
        PROFILE_GROUP_BASE
            + match self {
                UserProfile::Visitor => 0,
                UserProfile::Staff => 1,
                UserProfile::Faculty => 2,
                UserProfile::Undergrad => 3,
                UserProfile::Grad => 4,
            }
    }

    /// Short label used in experiment tables (the paper's F/G/U/S).
    pub fn label(self) -> &'static str {
        match self {
            UserProfile::Visitor => "V",
            UserProfile::Staff => "S",
            UserProfile::Faculty => "F",
            UserProfile::Undergrad => "U",
            UserProfile::Grad => "G",
        }
    }
}

/// Affinity-group ids live below this; profile-group ids at/above it.
pub const PROFILE_GROUP_BASE: i64 = 1_000_000;

/// Privacy-preference split of Section 2.1 (after Lin et al.): 20%
/// unconcerned + 18% advanced + 62% situational (of which 2/3 behave
/// unconcerned and 1/3 advanced) → ~61.3% unconcerned, ~38.7% advanced.
pub fn advanced_fraction() -> f64 {
    0.18 + 0.62 / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_sum_to_dataset_size() {
        let total: u32 = UserProfile::ALL.iter().map(|p| p.paper_count()).sum();
        assert_eq!(total, 36_436);
    }

    #[test]
    fn visitor_is_rare() {
        assert!(UserProfile::Visitor.presence_rate() < 0.05);
        for p in UserProfile::ALL.iter().skip(1) {
            assert!(p.presence_rate() > 0.5);
        }
    }

    #[test]
    fn profile_groups_distinct() {
        let mut ids: Vec<i64> = UserProfile::ALL.iter().map(|p| p.group_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
        assert!(ids.iter().all(|&i| i >= PROFILE_GROUP_BASE));
    }

    #[test]
    fn advanced_fraction_matches_section_2_1() {
        let f = advanced_fraction();
        assert!((f - 0.3866).abs() < 0.01);
    }
}
