//! The SmartBench-style query templates Q1/Q2/Q3 (paper Section 7.1).
//!
//! * **Q1** — devices connected at a list of locations during a period
//!   (location surveillance);
//! * **Q2** — connectivity of a list of devices during a period (device
//!   surveillance);
//! * **Q3** — number of devices of a user group at a location over time
//!   (analytics; joins `wifi_dataset` with `user_group_membership`).
//!
//! Each template is generated at three selectivity classes by widening the
//! location list / device list / time window, as the paper does.

use crate::tippers::{TippersDataset, AP_BASE, NUM_APS, WIFI_TABLE};
use minidb::expr::{CmpOp, ColumnRef, Expr};
use minidb::plan::{AggFunc, SelectItem, SelectQuery, TableRef};
use minidb::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryClass {
    /// Location surveillance.
    Q1,
    /// Device surveillance.
    Q2,
    /// Group analytics (join + aggregate).
    Q3,
}

impl QueryClass {
    /// All templates.
    pub const ALL: [QueryClass; 3] = [QueryClass::Q1, QueryClass::Q2, QueryClass::Q3];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Q1 => "Q1",
            QueryClass::Q2 => "Q2",
            QueryClass::Q3 => "Q3",
        }
    }
}

/// Selectivity class (the paper's low/mid/high ρ(Q)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Selectivity {
    /// ~0.1–1% of the relation.
    Low,
    /// A few percent.
    Mid,
    /// Tens of percent.
    High,
}

impl Selectivity {
    /// All classes in increasing order.
    pub const ALL: [Selectivity; 3] = [Selectivity::Low, Selectivity::Mid, Selectivity::High];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Selectivity::Low => "low",
            Selectivity::Mid => "mid",
            Selectivity::High => "high",
        }
    }

    fn ap_count(self) -> usize {
        match self {
            Selectivity::Low => 2,
            Selectivity::Mid => 8,
            Selectivity::High => 28,
        }
    }

    fn device_count(self) -> usize {
        match self {
            Selectivity::Low => 8,
            Selectivity::Mid => 60,
            Selectivity::High => 400,
        }
    }

    fn hours(self) -> u32 {
        match self {
            Selectivity::Low => 2,
            Selectivity::Mid => 5,
            Selectivity::High => 12,
        }
    }

    fn day_span(self) -> i32 {
        match self {
            Selectivity::Low => 7,
            Selectivity::Mid => 30,
            Selectivity::High => 90,
        }
    }
}

fn time_window(rng: &mut StdRng, sel: Selectivity) -> Expr {
    // Latest possible start keeps the window inside the day; wide windows
    // leave little slack, so clamp the range to stay non-empty.
    let latest_start = (20u32.saturating_sub(sel.hours())).max(9);
    let start = rng.gen_range(8 * 3600..latest_start * 3600);
    Expr::Between {
        expr: Box::new(Expr::Column(ColumnRef::qualified("w", "ts_time"))),
        low: Box::new(Expr::Literal(Value::Time(start))),
        high: Box::new(Expr::Literal(Value::Time(start + sel.hours() * 3600))),
        negated: false,
    }
}

fn date_window(rng: &mut StdRng, ds: &TippersDataset, sel: Selectivity) -> Expr {
    let (lo, hi) = ds.date_range();
    let span = sel.day_span().min(hi - lo);
    let start = if hi - lo > span {
        lo + rng.gen_range(0..(hi - lo - span))
    } else {
        lo
    };
    Expr::Between {
        expr: Box::new(Expr::Column(ColumnRef::qualified("w", "ts_date"))),
        low: Box::new(Expr::Literal(Value::Date(start))),
        high: Box::new(Expr::Literal(Value::Date(start + span))),
        negated: false,
    }
}

/// Generate one query of a given class and selectivity.
pub fn generate_query(
    ds: &TippersDataset,
    class: QueryClass,
    sel: Selectivity,
    seed: u64,
) -> SelectQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    match class {
        QueryClass::Q1 => {
            let n = sel.ap_count().min(NUM_APS as usize);
            let mut aps: Vec<i64> = (0..NUM_APS as i64).map(|a| AP_BASE + a).collect();
            // Fisher–Yates prefix.
            for i in 0..n {
                let j = rng.gen_range(i..aps.len());
                aps.swap(i, j);
            }
            let ap_list = Expr::InList {
                expr: Box::new(Expr::Column(ColumnRef::qualified("w", "wifi_ap"))),
                list: aps[..n].iter().map(|&a| Expr::Literal(Value::Int(a))).collect(),
                negated: false,
            };
            SelectQuery {
                with: vec![],
                select: vec![SelectItem::Star],
                from: vec![TableRef::aliased(WIFI_TABLE, "w")],
                predicate: Some(Expr::all(vec![
                    ap_list,
                    time_window(&mut rng, sel),
                    date_window(&mut rng, ds, sel),
                ])),
                group_by: vec![],
                limit: None,
            }
        }
        QueryClass::Q2 => {
            let n = sel.device_count().min(ds.devices.len());
            let mut ids: Vec<i64> = ds.devices.iter().map(|d| d.id).collect();
            for i in 0..n {
                let j = rng.gen_range(i..ids.len());
                ids.swap(i, j);
            }
            let dev_list = Expr::InList {
                expr: Box::new(Expr::Column(ColumnRef::qualified("w", "owner"))),
                list: ids[..n].iter().map(|&d| Expr::Literal(Value::Int(d))).collect(),
                negated: false,
            };
            SelectQuery {
                with: vec![],
                select: vec![SelectItem::Star],
                from: vec![TableRef::aliased(WIFI_TABLE, "w")],
                predicate: Some(Expr::all(vec![
                    dev_list,
                    time_window(&mut rng, sel),
                    date_window(&mut rng, ds, sel),
                ])),
                group_by: vec![],
                limit: None,
            }
        }
        QueryClass::Q3 => {
            let group = rng.gen_range(0..ds.num_groups) as i64;
            SelectQuery {
                with: vec![],
                select: vec![SelectItem::Aggregate {
                    func: AggFunc::CountDistinct,
                    column: Some(ColumnRef::qualified("w", "owner")),
                    alias: Some("devices".into()),
                }],
                from: vec![
                    TableRef::aliased("user_group_membership", "ug"),
                    TableRef::aliased(WIFI_TABLE, "w"),
                ],
                predicate: Some(Expr::all(vec![
                    Expr::col_eq(
                        ColumnRef::qualified("ug", "user_group_id"),
                        Value::Int(group),
                    ),
                    Expr::Cmp {
                        op: CmpOp::Eq,
                        lhs: Box::new(Expr::Column(ColumnRef::qualified("ug", "user_id"))),
                        rhs: Box::new(Expr::Column(ColumnRef::qualified("w", "owner"))),
                    },
                    time_window(&mut rng, sel),
                    date_window(&mut rng, ds, sel),
                ])),
                group_by: vec![],
                limit: None,
            }
        }
    }
}

/// A full workload: every (class, selectivity) pair × `per_cell` seeds.
pub fn workload(
    ds: &TippersDataset,
    per_cell: u64,
) -> Vec<(QueryClass, Selectivity, SelectQuery)> {
    let mut out = Vec::new();
    for class in QueryClass::ALL {
        for sel in Selectivity::ALL {
            for k in 0..per_cell {
                let seed = 1000 * (class as u64 + 1) + 100 * (sel as u64 + 1) + k;
                out.push((class, sel, generate_query(ds, class, sel, seed)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tippers::{generate, TippersConfig};
    use minidb::{Database, DbProfile};

    fn dataset() -> (Database, TippersDataset) {
        let mut db = Database::new(DbProfile::MySqlLike);
        let ds = generate(
            &mut db,
            &TippersConfig {
                seed: 5,
                scale: 0.01,
                days: 60,
            },
        )
        .unwrap();
        (db, ds)
    }

    #[test]
    fn queries_run_and_selectivity_orders() {
        let (db, ds) = dataset();
        let total = db.table(WIFI_TABLE).unwrap().table.len() as f64;
        for class in [QueryClass::Q1, QueryClass::Q2] {
            let mut fractions = Vec::new();
            for sel in Selectivity::ALL {
                // Average over a few seeds to reduce variance.
                let mut acc = 0.0;
                for seed in 0..5 {
                    let q = generate_query(&ds, class, sel, seed);
                    acc += db.run_query(&q).unwrap().len() as f64 / total;
                }
                fractions.push(acc / 5.0);
            }
            assert!(
                fractions[0] < fractions[1] && fractions[1] < fractions[2],
                "{class:?} selectivities not ordered: {fractions:?}"
            );
            assert!(fractions[0] < 0.05, "{class:?} low too big: {fractions:?}");
        }
    }

    #[test]
    fn q3_counts_devices() {
        let (db, ds) = dataset();
        let q = generate_query(&ds, QueryClass::Q3, Selectivity::High, 1);
        let res = db.run_query(&q).unwrap();
        assert_eq!(res.columns, vec!["devices"]);
        assert_eq!(res.rows.len(), 1);
        assert!(res.rows[0][0].as_int().unwrap() >= 0);
    }

    #[test]
    fn workload_covers_grid() {
        let (_, ds) = dataset();
        let w = workload(&ds, 2);
        assert_eq!(w.len(), 3 * 3 * 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, ds) = dataset();
        let a = generate_query(&ds, QueryClass::Q1, Selectivity::Low, 9);
        let b = generate_query(&ds, QueryClass::Q1, Selectivity::Low, 9);
        assert_eq!(a, b);
        let c = generate_query(&ds, QueryClass::Q1, Selectivity::Low, 10);
        assert_ne!(a, c);
    }
}
