//! TIPPERS-like WiFi connectivity dataset generator (paper Section 7.1).
//!
//! The real TIPPERS dataset — 3.9M association events from 64 APs in the
//! UCI CS building over three months, 36,436 distinct devices — contains
//! identifiable MAC addresses and is not redistributable. This generator
//! reproduces its published statistics: the device-profile distribution,
//! 56 affinity groups averaging ~108 devices, diurnal presence patterns
//! per profile, and AP locality (devices mostly connect near their home
//! region). `scale` shrinks everything proportionally so unit tests run
//! on thousands of rows while benches run near paper scale.

use crate::profiles::UserProfile;
use minidb::value::{DataType, Value};
use minidb::{Database, DbResult, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sieve_core::filter::GroupDirectory;
use sieve_core::policy::UserId;

/// Number of WiFi APs in the building (paper: 64).
pub const NUM_APS: u32 = 64;

/// AP ids start here (the paper's examples use ids like 1200).
pub const AP_BASE: i64 = 1000;

/// Number of affinity groups at full scale (paper: 56).
pub const NUM_GROUPS_FULL: u32 = 56;

/// The main fact table name (paper Table 2: "WiFi Dataset").
pub const WIFI_TABLE: &str = "wifi_dataset";

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TippersConfig {
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Fraction of the paper's population/duration to generate
    /// (1.0 ≈ 36K devices / 3.9M events; tests use ~0.01).
    pub scale: f64,
    /// Observation days (paper: ~90, one quarter).
    pub days: u32,
}

impl Default for TippersConfig {
    fn default() -> Self {
        TippersConfig {
            seed: 7,
            scale: 0.02,
            days: 90,
        }
    }
}

/// One device/user of the campus.
#[derive(Debug, Clone)]
pub struct Device {
    /// Owner id (referenced by `wifi_dataset.owner`).
    pub id: UserId,
    /// Profile (drives presence and policy defaults).
    pub profile: UserProfile,
    /// Affinity group (the group with maximum affinity, per the paper).
    pub group: i64,
    /// Home AP: center of the region the device frequents.
    pub home_ap: i64,
}

/// The generated dataset: device directory plus the loaded database
/// statistics. Events are streamed straight into the database.
#[derive(Debug)]
pub struct TippersDataset {
    /// Device directory in id order.
    pub devices: Vec<Device>,
    /// Group directory (affinity groups + profile groups).
    pub groups: GroupDirectory,
    /// Number of affinity groups generated.
    pub num_groups: u32,
    /// First observation date (days since epoch; 2019-09-25 as in the
    /// paper's example query).
    pub start_date: i32,
    /// Observation days.
    pub days: u32,
    /// Number of connectivity events generated.
    pub events: u64,
}

impl TippersDataset {
    /// Devices of a given profile.
    pub fn devices_of(&self, profile: UserProfile) -> impl Iterator<Item = &Device> {
        self.devices.iter().filter(move |d| d.profile == profile)
    }

    /// Date range of the dataset as `(first, last)` days since epoch.
    pub fn date_range(&self) -> (i32, i32) {
        (self.start_date, self.start_date + self.days as i32 - 1)
    }
}

/// Generate the dataset and load it into a database: creates the Table 2
/// schema (`users`, `user_groups`, `user_group_membership`, `location`,
/// `wifi_dataset`), inserts rows, builds the indexes SIEVE expects
/// (`owner` — mandated by the data model — plus `wifi_ap`, `ts_time`,
/// `ts_date`), and runs ANALYZE.
pub fn generate(db: &mut Database, config: &TippersConfig) -> DbResult<TippersDataset> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start_date = Value::parse_date("2019-09-25").expect("valid date");

    // --- schema ---------------------------------------------------------
    db.create_table(TableSchema::of(
        "users",
        &[
            ("id", DataType::Int),
            ("device", DataType::Str),
            ("office", DataType::Int),
        ],
    ))?;
    db.create_table(TableSchema::of(
        "user_groups",
        &[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("owner", DataType::Int),
        ],
    ))?;
    db.create_table(TableSchema::of(
        "user_group_membership",
        &[("user_group_id", DataType::Int), ("user_id", DataType::Int)],
    ))?;
    db.create_table(TableSchema::of(
        "location",
        &[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("type", DataType::Str),
        ],
    ))?;
    db.create_table(TableSchema::of(
        WIFI_TABLE,
        &[
            ("id", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("owner", DataType::Int),
            ("ts_time", DataType::Time),
            ("ts_date", DataType::Date),
        ],
    ))?;

    // --- locations (APs) --------------------------------------------------
    let room_types = ["classroom", "lab", "office", "common"];
    for ap in 0..NUM_APS {
        db.insert(
            "location",
            vec![
                Value::Int(AP_BASE + ap as i64),
                Value::str(format!("region_{ap}")),
                Value::str(room_types[(ap as usize) % room_types.len()]),
            ],
        )?;
    }

    // --- devices ----------------------------------------------------------
    // The number of groups does NOT scale down with the population: the
    // paper's campus has 56 affinity groups regardless, and a querier's
    // group covers ~1/56 of the non-visitor population. Scaling groups
    // down would inflate the fraction of the table a querier's guards
    // cover and distort every cost shape downstream.
    let num_groups = NUM_GROUPS_FULL;
    let mut devices: Vec<Device> = Vec::new();
    let mut groups = GroupDirectory::new();
    let mut next_id: UserId = 0;
    for profile in UserProfile::ALL {
        let count = ((profile.paper_count() as f64 * config.scale).round() as u32).max(2);
        for _ in 0..count {
            let id = next_id;
            next_id += 1;
            // Affinity groups own small AP regions: members of a group
            // frequent the same few APs (the paper groups users "based on
            // the affinity of their devices to rooms"), which is also what
            // makes their policies share guardable location conditions.
            // Regions of adjacent groups overlap (more groups than APs
            // would otherwise allow).
            let group = rng.gen_range(0..num_groups) as i64;
            let region_start = (group as u32 * NUM_APS) / num_groups;
            let home_ap = AP_BASE + ((region_start + rng.gen_range(0..3)) % NUM_APS) as i64;
            if profile != UserProfile::Visitor {
                groups.add_member(group, id);
            }
            groups.add_member(profile.group_id(), id);
            devices.push(Device {
                id,
                profile,
                group,
                home_ap,
            });
            db.insert(
                "users",
                vec![
                    Value::Int(id),
                    Value::str(format!("device_{id:06x}")),
                    Value::Int(home_ap),
                ],
            )?;
        }
    }
    for g in 0..num_groups {
        db.insert(
            "user_groups",
            vec![
                Value::Int(g as i64),
                Value::str(format!("affinity_{g}")),
                Value::Int(-1),
            ],
        )?;
    }
    for p in UserProfile::ALL {
        db.insert(
            "user_groups",
            vec![
                Value::Int(p.group_id()),
                Value::str(format!("profile_{}", p.label())),
                Value::Int(-1),
            ],
        )?;
    }
    for d in &devices {
        if d.profile != UserProfile::Visitor {
            db.insert(
                "user_group_membership",
                vec![Value::Int(d.group), Value::Int(d.id)],
            )?;
        }
        db.insert(
            "user_group_membership",
            vec![Value::Int(d.profile.group_id()), Value::Int(d.id)],
        )?;
    }

    // --- connectivity events ----------------------------------------------
    let mut event_id: i64 = 0;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for d in &devices {
        let (day_start, day_end) = d.profile.day_window();
        for day in 0..config.days {
            if !rng.gen_bool(d.profile.presence_rate()) {
                continue;
            }
            let date = start_date + day as i32;
            let n_events = {
                let mean = d.profile.events_per_day();
                // Uniform around the mean keeps generation cheap and the
                // per-day distribution realistic enough for selectivity.
                rng.gen_range((mean * 0.5) as u32..=(mean * 1.5) as u32).max(1)
            };
            let arrive = rng.gen_range(day_start..day_start + 2 * 3600);
            let leave = rng.gen_range(day_end.saturating_sub(2 * 3600).max(arrive + 600)..=day_end);
            for k in 0..n_events {
                // Events spread over the stay; AP is near home (locality):
                // 70% home AP, 25% a neighbour, 5% anywhere.
                let t = arrive + ((leave - arrive) as u64 * k as u64 / n_events as u64) as u32
                    + rng.gen_range(0..600);
                let ap = match rng.gen_range(0..100) {
                    0..=69 => d.home_ap,
                    70..=94 => {
                        let delta = rng.gen_range(1..=3);
                        AP_BASE + ((d.home_ap - AP_BASE + delta).rem_euclid(NUM_APS as i64))
                    }
                    _ => AP_BASE + rng.gen_range(0..NUM_APS) as i64,
                };
                rows.push(vec![
                    Value::Int(event_id),
                    Value::Int(ap),
                    Value::Int(d.id),
                    Value::Time(t.min(86_399)),
                    Value::Date(date),
                ]);
                event_id += 1;
            }
        }
    }
    let events = rows.len() as u64;
    db.insert_all(WIFI_TABLE, rows)?;

    // --- indexes + statistics ----------------------------------------------
    for col in ["owner", "wifi_ap", "ts_time", "ts_date"] {
        db.create_index(WIFI_TABLE, col)?;
    }
    db.create_index("user_group_membership", "user_group_id")?;
    db.create_index("user_group_membership", "user_id")?;
    db.analyze(WIFI_TABLE)?;
    db.analyze("user_group_membership")?;

    Ok(TippersDataset {
        devices,
        groups,
        num_groups,
        start_date,
        days: config.days,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::DbProfile;

    fn small() -> (Database, TippersDataset) {
        let mut db = Database::new(DbProfile::MySqlLike);
        let ds = generate(
            &mut db,
            &TippersConfig {
                seed: 42,
                scale: 0.005,
                days: 30,
            },
        )
        .unwrap();
        (db, ds)
    }

    #[test]
    fn profile_distribution_scales() {
        let (_, ds) = small();
        let visitors = ds.devices_of(UserProfile::Visitor).count();
        let faculty = ds.devices_of(UserProfile::Faculty).count();
        assert!(visitors > faculty, "visitors dominate the population");
        // 0.5% of 36K ≈ 180 devices.
        assert!((100..400).contains(&ds.devices.len()), "got {}", ds.devices.len());
    }

    #[test]
    fn events_loaded_and_indexed() {
        let (db, ds) = small();
        let entry = db.table(WIFI_TABLE).unwrap();
        assert_eq!(entry.table.len() as u64, ds.events);
        assert!(ds.events > 1000, "got {} events", ds.events);
        for col in ["owner", "wifi_ap", "ts_time", "ts_date"] {
            assert!(entry.has_index(col), "missing index on {col}");
            assert!(entry.histogram(col).is_some(), "missing histogram on {col}");
        }
    }

    #[test]
    fn visitors_connect_rarely() {
        let (db, ds) = small();
        let entry = db.table(WIFI_TABLE).unwrap();
        let count_for = |id: UserId| {
            entry
                .index_on("owner")
                .unwrap()
                .count_eq(&Value::Int(id))
        };
        let visitor_avg: f64 = {
            let ids: Vec<UserId> = ds.devices_of(UserProfile::Visitor).map(|d| d.id).collect();
            ids.iter().map(|&i| count_for(i) as f64).sum::<f64>() / ids.len() as f64
        };
        let grad_avg: f64 = {
            let ids: Vec<UserId> = ds.devices_of(UserProfile::Grad).map(|d| d.id).collect();
            ids.iter().map(|&i| count_for(i) as f64).sum::<f64>() / ids.len() as f64
        };
        assert!(
            grad_avg > visitor_avg * 10.0,
            "grads ({grad_avg:.1}) should vastly out-connect visitors ({visitor_avg:.1})"
        );
    }

    #[test]
    fn events_within_date_and_time_bounds() {
        let (db, ds) = small();
        let entry = db.table(WIFI_TABLE).unwrap();
        let (lo, hi) = ds.date_range();
        for row in entry.table.rows().iter().take(2000) {
            let d = row[4].as_date().unwrap();
            assert!((lo..=hi).contains(&d));
            let t = row[3].as_time().unwrap();
            assert!(t < 86_400);
            let ap = row[1].as_int().unwrap();
            assert!((AP_BASE..AP_BASE + NUM_APS as i64).contains(&ap));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (db1, ds1) = small();
        let (db2, ds2) = small();
        assert_eq!(ds1.events, ds2.events);
        assert_eq!(
            db1.table(WIFI_TABLE).unwrap().table.rows()[..50],
            db2.table(WIFI_TABLE).unwrap().table.rows()[..50]
        );
    }

    #[test]
    fn groups_populated() {
        let (_, ds) = small();
        let non_visitor = ds
            .devices
            .iter()
            .find(|d| d.profile != UserProfile::Visitor)
            .unwrap();
        let gs = ds.groups.groups_of(non_visitor.id);
        assert!(gs.contains(&non_visitor.group));
        assert!(gs.contains(&non_visitor.profile.group_id()));
    }
}
