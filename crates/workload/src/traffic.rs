//! Multi-querier traffic generation: a deterministic batch of
//! `(QueryMetadata, SelectQuery)` requests from many *distinct* queriers,
//! the input shape of `sieve_core`'s batched evaluation
//! (`Sieve::prepare_batch` / `Sieve::execute_batch`).
//!
//! Each querier poses one query drawn from the SmartBench templates
//! ([`crate::query_gen`]), cycling through the Q1/Q2/Q3 classes and the
//! three selectivity tiers so a batch mixes cheap surveillance lookups
//! with joins and aggregates — the concurrent-traffic mix the ROADMAP's
//! "millions of users" direction targets.

use crate::profiles::UserProfile;
use crate::query_gen::{generate_query, QueryClass, Selectivity};
use crate::tippers::TippersDataset;
use minidb::SelectQuery;
use sieve_core::policy::QueryMetadata;

/// Knobs for one traffic batch.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Distinct queriers to draw (capped at the device-directory size).
    pub queriers: usize,
    /// Purpose attached to every request.
    pub purpose: String,
    /// Base seed; querier `i` uses `seed + i` so batches are reproducible
    /// and querier-distinct.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            queriers: 100,
            purpose: "Analytics".into(),
            seed: 1,
        }
    }
}

/// Generate a batch of requests from distinct queriers.
///
/// Queriers are taken from the device directory in id order, campus
/// profiles (faculty/staff/students) before visitors, so the front of the
/// batch is the policy-heavy population; visitors only fill in when the
/// campus population is smaller than `config.queriers`. Query classes and
/// selectivities cycle per request.
pub fn multi_querier_traffic(
    ds: &TippersDataset,
    config: &TrafficConfig,
) -> Vec<(QueryMetadata, SelectQuery)> {
    let mut queriers: Vec<i64> = ds
        .devices
        .iter()
        .filter(|d| d.profile != UserProfile::Visitor)
        .map(|d| d.id)
        .collect();
    queriers.extend(
        ds.devices
            .iter()
            .filter(|d| d.profile == UserProfile::Visitor)
            .map(|d| d.id),
    );
    queriers.truncate(config.queriers);

    queriers
        .into_iter()
        .enumerate()
        .map(|(i, querier)| {
            let class = QueryClass::ALL[i % QueryClass::ALL.len()];
            let sel = Selectivity::ALL[(i / QueryClass::ALL.len()) % Selectivity::ALL.len()];
            let query = generate_query(ds, class, sel, config.seed + i as u64);
            (QueryMetadata::new(querier, config.purpose.clone()), query)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tippers::{generate, TippersConfig};
    use minidb::{Database, DbProfile};
    use std::collections::HashSet;

    fn dataset() -> TippersDataset {
        let mut db = Database::new(DbProfile::MySqlLike);
        generate(
            &mut db,
            &TippersConfig {
                seed: 5,
                scale: 0.01,
                days: 30,
            },
        )
        .unwrap()
    }

    #[test]
    fn queriers_are_distinct_and_counted() {
        let ds = dataset();
        let cfg = TrafficConfig {
            queriers: 50,
            ..Default::default()
        };
        let batch = multi_querier_traffic(&ds, &cfg);
        assert_eq!(batch.len(), 50);
        let distinct: HashSet<i64> = batch.iter().map(|(qm, _)| qm.querier).collect();
        assert_eq!(distinct.len(), 50, "queriers must be distinct");
        assert!(batch.iter().all(|(qm, _)| qm.purpose == "Analytics"));
    }

    #[test]
    fn batch_is_deterministic_and_seed_sensitive() {
        let ds = dataset();
        let cfg = TrafficConfig {
            queriers: 12,
            ..Default::default()
        };
        let a = multi_querier_traffic(&ds, &cfg);
        let b = multi_querier_traffic(&ds, &cfg);
        assert_eq!(a.len(), b.len());
        for ((qa, a), (qb, b)) in a.iter().zip(&b) {
            assert_eq!(qa.querier, qb.querier);
            assert_eq!(a, b);
        }
        let c = multi_querier_traffic(
            &ds,
            &TrafficConfig {
                seed: 99,
                ..cfg.clone()
            },
        );
        assert!(a.iter().zip(&c).any(|((_, a), (_, c))| a != c));
    }

    #[test]
    fn classes_and_selectivities_cycle() {
        let ds = dataset();
        let batch = multi_querier_traffic(
            &ds,
            &TrafficConfig {
                queriers: 18,
                ..Default::default()
            },
        );
        // 18 requests = two full 3x3 class/selectivity cycles: both join
        // (Q3 has two FROM entries) and single-table shapes appear.
        let froms: HashSet<usize> = batch.iter().map(|(_, q)| q.from.len()).collect();
        assert!(froms.contains(&1) && froms.contains(&2));
    }
}
