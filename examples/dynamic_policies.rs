//! Dynamic policy management (paper Section 6): policies arrive while
//! queries run. Shows (a) immediate regeneration, (b) the optimal-rate
//! policy deferring regeneration while still enforcing pending policies,
//! and (c) the closed-form regeneration interval k̃ vs an empirical scan.
//!
//! Run with: `cargo run --release --example dynamic_policies`

use sieve::core::dynamic::{
    empirical_best_interval, optimal_regeneration_interval, RegenerationPolicy,
};
use sieve::core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata};
use sieve::core::{CostModel, Sieve, SieveOptions};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, SelectQuery, TableSchema};

fn policy(owner: i64) -> Policy {
    Policy::new(
        owner,
        "wifi_dataset",
        QuerierSpec::User(500),
        "Analytics",
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(1005)),
        )],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
        ],
    ))?;
    for i in 0..30_000i64 {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % 300),
                Value::Int(1000 + i % 16),
            ],
        )?;
    }
    db.create_index("wifi_dataset", "owner")?;
    db.create_index("wifi_dataset", "wifi_ap")?;
    db.analyze("wifi_dataset")?;

    // Defer regeneration per the Section 6 optimal rate: one query per
    // policy insertion.
    let mut sieve = Sieve::new(db, SieveOptions::default())?;
    sieve.options_mut().regeneration = RegenerationPolicy::OptimalRate {
        queries_per_insertion: 1.0,
    };
    for owner in 0..50 {
        sieve.add_policy(policy(owner))?;
    }

    let qm = QueryMetadata::new(500, "Analytics");
    let query = SelectQuery::star_from("wifi_dataset");
    let n0 = sieve.execute(&query, &qm)?.len();
    println!("initial visible rows: {n0} (generations: {})", sieve.generations());

    // Interleave policy insertions with queries; enforcement is always
    // exact (pending policies ride along as extra guard branches), while
    // regeneration fires only at the k̃ threshold.
    for owner in 50..80 {
        sieve.add_policy(policy(owner))?;
        let n = sieve.execute(&query, &qm)?.len();
        println!(
            "after policy for owner {owner}: visible={n}, regenerations so far={}",
            sieve.generations()
        );
    }

    // The closed form vs the empirical optimum (Equation 19).
    let cost = CostModel::default();
    let k_formula = optimal_regeneration_interval(&cost, 400.0, 1.0);
    let k_emp = empirical_best_interval(&cost, 400.0, 1.0, 200, 100, 3);
    println!("\nEquation 19 k̃ = {k_formula:.1}; empirical scan minimum = {k_emp}");
    Ok(())
}
