//! Mall scenario (paper Section 7.1 / Experiment 5): shops query customer
//! connectivity under customer-defined policies — regulars share with
//! their favourite shops, irregulars only during sales, interest-driven
//! customers during lightning windows.
//!
//! Run with: `cargo run --release --example mall_lightning_sale`

use sieve::core::baselines::Baseline;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::QueryMetadata;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::{Database, DbProfile, SelectQuery};
use sieve::workload::mall::{generate as generate_mall, MallConfig, MallDataset};
use sieve::workload::MALL_TABLE;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // PostgreSQL-like profile: Experiment 5 runs the Mall workload there.
    let mut db = Database::new(DbProfile::PostgresLike);
    let ds = generate_mall(
        &mut db,
        &MallConfig {
            seed: 11,
            scale: 0.2,
            shops: 35,
            days: 60,
        },
    )?;
    println!(
        "mall: {} customers, {} shops, {} events, {} policies",
        ds.customers.len(),
        ds.shops.len(),
        ds.events,
        ds.policies.len()
    );

    let mut sieve = Sieve::new(
        db,
        SieveOptions {
            timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        },
    )?;
    *sieve.groups_mut() = ds.groups.clone();
    sieve.add_policies(ds.policies.iter().cloned())?;

    // Each shop runs "who is in the mall right now that I may target?".
    let query = SelectQuery::star_from(MALL_TABLE);
    println!("\nper-shop visibility under customer policies (first 6 shops):");
    for &shop in ds.shops.iter().take(6) {
        let querier = MallDataset::shop_querier(shop);
        for purpose in ["Promotions", "Sales", "Lightning"] {
            let qm = QueryMetadata::new(querier, purpose);
            let rows = sieve.execute(&query, &qm)?;
            if !rows.is_empty() {
                println!(
                    "  shop {shop} ({purpose:>10}): {} of {} events visible",
                    rows.len(),
                    ds.events
                );
            }
        }
    }

    // Speedup demonstration on one busy shop.
    let busy = MallDataset::shop_querier(ds.shops[0]);
    let qm = QueryMetadata::new(busy, "Sales");
    for (name, mech) in [
        ("SIEVE(P)   ", Enforcement::Sieve),
        ("BaselineP(P)", Enforcement::Baseline(Baseline::P)),
    ] {
        let _ = sieve.run_timed(mech, &query, &qm);
        let (res, stats) = sieve.run_timed(mech, &query, &qm);
        println!(
            "  {name}: rows={:>6} wall={:>7.2} ms simulated_kcost={:>9.1}",
            res.map(|r| r.len()).unwrap_or(0),
            stats.wall_ms(),
            stats.simulated_cost / 1e3
        );
    }
    Ok(())
}
