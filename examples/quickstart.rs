//! Quickstart: the five-minute tour of SIEVE.
//!
//! Builds a tiny WiFi-connectivity table, registers a few access-control
//! policies, and runs the same query as two different queriers — showing
//! the middleware rewriting the query (WITH clause + guards + hints) and
//! enforcing default-deny semantics.
//!
//! Run with: `cargo run --example quickstart`

use sieve::core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata};
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, TableSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A database with a WiFi-connectivity table (paper Table 2).
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("owner", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))?;
    // John (owner 120) and Mary (owner 121) connect during the day.
    for hour in 8..18u32 {
        for (owner, ap) in [(120i64, 1200i64), (121, 1200), (122, 1300)] {
            db.insert(
                "wifi_dataset",
                vec![
                    Value::Int(db.table("wifi_dataset")?.table.len() as i64),
                    Value::Int(ap),
                    Value::Int(owner),
                    Value::Time(hour * 3600),
                ],
            )?;
        }
    }
    db.create_index("wifi_dataset", "owner")?;
    db.create_index("wifi_dataset", "wifi_ap")?;
    db.create_index("wifi_dataset", "ts_time")?;
    db.analyze("wifi_dataset")?;

    // 2. Wrap the database in the SIEVE middleware.
    let mut sieve = Sieve::new(db, SieveOptions::default())?;

    // 3. Policies (paper Section 3.1's running example): John allows
    //    Prof. Smith (querier 500) to see his connectivity at AP 1200
    //    between 9 and 10 am, for attendance control. Mary allows the AP
    //    unconditionally.
    sieve.add_policy(Policy::new(
        120,
        "wifi_dataset",
        QuerierSpec::User(500),
        "Attendance",
        vec![
            ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(9 * 3600), Value::Time(10 * 3600)),
            ),
            ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1200))),
        ],
    ))?;
    sieve.add_policy(Policy::new(
        121,
        "wifi_dataset",
        QuerierSpec::User(500),
        "Attendance",
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(1200)),
        )],
    ))?;

    // 4. Prof. Smith queries for attendance: sees John's 9-10 am rows and
    //    all of Mary's rows at AP 1200 — nothing else.
    let smith = QueryMetadata::new(500, "Attendance");
    let rewritten = sieve.rewrite(
        &sieve::minidb::sql::parse("SELECT * FROM wifi_dataset")?,
        &smith,
    )?;
    println!("SIEVE rewrote the query to:\n  {}\n", sieve::minidb::sql::render_query(&rewritten.query));
    println!(
        "strategy: {:?}, guards: {}\n",
        rewritten.relations[0].strategy, rewritten.relations[0].guard_count
    );

    let rows = sieve.execute_sql("SELECT * FROM wifi_dataset", &smith)?;
    println!("Prof. Smith (Attendance) sees {} rows:", rows.len());
    for r in &rows.rows {
        println!("  owner={} ap={} time={}", r[2], r[1], r[3]);
    }

    // 5. The same querier with a different purpose is denied (purpose-based
    //    access control), and an unknown querier sees nothing at all
    //    (default deny).
    let marketing = QueryMetadata::new(500, "Marketing");
    assert!(sieve.execute_sql("SELECT * FROM wifi_dataset", &marketing)?.is_empty());
    let stranger = QueryMetadata::new(999, "Attendance");
    assert!(sieve.execute_sql("SELECT * FROM wifi_dataset", &stranger)?.is_empty());
    println!("\nwrong purpose → 0 rows; unknown querier → 0 rows (default deny). ✓");
    Ok(())
}
