//! Smart-campus scenario (paper Section 2.1): a professor runs the
//! attendance-vs-performance analysis over a generated TIPPERS-like
//! dataset with a realistic policy corpus, comparing SIEVE against the
//! three baselines on the same query.
//!
//! Run with: `cargo run --release --example smart_campus`

use sieve::core::baselines::Baseline;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::QueryMetadata;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::{Database, DbProfile};
use sieve::workload::policy_gen::{generate_policies, PolicyGenConfig};
use sieve::workload::query_gen::generate_query;
use sieve::workload::tippers::{generate as generate_tippers, TippersConfig};
use sieve::workload::{QueryClass, Selectivity, UserProfile};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate the campus at 2% of the paper's scale (fast to run).
    let mut db = Database::new(DbProfile::MySqlLike);
    let dataset = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 7,
            scale: 0.02,
            days: 90,
        },
    )?;
    let policies = generate_policies(&dataset, &PolicyGenConfig::default());
    println!(
        "campus: {} devices, {} connectivity events, {} policies",
        dataset.devices.len(),
        dataset.events,
        policies.len()
    );

    let mut sieve = Sieve::new(
        db,
        SieveOptions {
            timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        },
    )?;
    *sieve.groups_mut() = dataset.groups.clone();
    sieve.add_policies(policies)?;

    // A professor (faculty profile) asks the analytics question.
    let professor = dataset
        .devices_of(UserProfile::Faculty)
        .next()
        .expect("faculty exists")
        .id;
    let qm = QueryMetadata::new(professor, "Analytics");

    // Q1-style query: who was at these classrooms during lecture hours?
    let query = generate_query(&dataset, QueryClass::Q1, Selectivity::Mid, 42);
    println!("\nrunning a mid-selectivity Q1 as querier {professor} (Analytics):");

    for (name, mech) in [
        ("SIEVE     ", Enforcement::Sieve),
        ("BaselineP ", Enforcement::Baseline(Baseline::P)),
        ("BaselineI ", Enforcement::Baseline(Baseline::I)),
        ("BaselineU ", Enforcement::Baseline(Baseline::U)),
        ("no-policy ", Enforcement::NoPolicies),
    ] {
        // Warm-up run generates guards / registers ∆ partitions.
        let _ = sieve.run_timed(mech, &query, &qm);
        let (res, stats) = sieve.run_timed(mech, &query, &qm);
        match res {
            Ok(r) => println!(
                "  {name} rows={:>6}  wall={:>8.2} ms  simulated_kcost={:>10.1}  \
                 (pages seq/rand {}/{}, policy evals {})",
                r.len(),
                stats.wall_ms(),
                stats.simulated_cost / 1e3,
                stats.counters.seq_pages_read,
                stats.counters.rand_pages_read,
                stats.counters.policy_evals,
            ),
            Err(e) => println!("  {name} failed: {e}"),
        }
    }

    // The access-controlled answer is a strict subset of the raw answer.
    let (full, _) = sieve.run_timed(Enforcement::NoPolicies, &query, &qm);
    let (controlled, _) = sieve.run_timed(Enforcement::Sieve, &query, &qm);
    let full = full?;
    let controlled = controlled?;
    assert!(controlled.len() <= full.len());
    println!(
        "\naccess control reveals {} of {} matching rows to this querier.",
        controlled.len(),
        full.len()
    );
    Ok(())
}
