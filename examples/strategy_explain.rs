//! Strategy selection under the hood (paper Section 5.5): shows, for
//! queries of increasing selectivity, which access strategy SIEVE's cost
//! model picks (LinearScan / IndexQuery / IndexGuards), the EXPLAIN the
//! engine reports, and the rewritten SQL.
//!
//! Run with: `cargo run --release --example strategy_explain`

use sieve::core::policy::{CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata};
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, TableSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))?;
    for i in 0..80_000i64 {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % 800),
                Value::Int(1000 + i % 64),
                Value::Time(((i * 173) % 86_400) as u32),
            ],
        )?;
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index("wifi_dataset", col)?;
    }
    db.analyze("wifi_dataset")?;

    let mut sieve = Sieve::new(db, SieveOptions::default())?;
    // 30 owners allow querier 1 at a couple of APs.
    for o in 0..30 {
        sieve.add_policy(Policy::new(
            o,
            "wifi_dataset",
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(1000 + o % 2)),
            )],
        ))?;
    }
    let qm = QueryMetadata::new(1, "Analytics");

    for (label, sql) in [
        (
            "very selective query (one AP, one hour)",
            "SELECT * FROM wifi_dataset WHERE wifi_ap = 1003 AND ts_time BETWEEN '09:00' AND '10:00'",
        ),
        (
            "medium query (three hours)",
            "SELECT * FROM wifi_dataset WHERE ts_time BETWEEN '09:00' AND '12:00'",
        ),
        ("unselective query (whole table)", "SELECT * FROM wifi_dataset"),
    ] {
        let query = sieve::minidb::sql::parse(sql)?;
        let rewritten = sieve.rewrite(&query, &qm)?;
        let info = &rewritten.relations[0];
        println!("== {label}");
        println!("   chosen strategy : {:?}", info.strategy);
        println!(
            "   estimates       : guards≈{:.0} rows, query≈{} rows",
            info.est_guard_rows,
            info.est_query_rows
                .map(|r| format!("{r:.0}"))
                .unwrap_or_else(|| "not sargable".into())
        );
        let explain = sieve.db().explain(&rewritten.query)?;
        print!("   engine EXPLAIN  :\n{}", indent(&explain.to_string()));
        println!(
            "   rewritten SQL   : {}\n",
            truncate(&sieve::minidb::sql::render_query(&rewritten.query), 160)
        );
    }
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("     {l}\n")).collect()
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
