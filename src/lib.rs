//! `sieve` — umbrella crate for the SIEVE reproduction.
//!
//! Re-exports the public API of the workspace crates:
//!
//! * [`minidb`] — the embedded relational engine substrate;
//! * [`core`] (`sieve-core`) — the SIEVE middleware itself;
//! * [`protocol`] (`sieve-protocol`) — the wire protocol: framing,
//!   versioned messages, fail-closed decode;
//! * [`server`] (`sieve-server`) — the wire server fronting a service;
//! * [`client`] (`sieve-client`) — remote `Session`/`Prepared` handles
//!   mirroring the in-process API;
//! * [`workload`] (`sieve-workload`) — dataset/policy/query generators.
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub use minidb;
pub use sieve_client as client;
pub use sieve_core as core;
pub use sieve_protocol as protocol;
pub use sieve_server as server;
pub use sieve_workload as workload;
