//! `sieve` — umbrella crate for the SIEVE reproduction.
//!
//! Re-exports the public API of the workspace crates:
//!
//! * [`minidb`] — the embedded relational engine substrate;
//! * [`core`] (`sieve-core`) — the SIEVE middleware itself;
//! * [`workload`] (`sieve-workload`) — dataset/policy/query generators.
//!
//! See `examples/quickstart.rs` for the five-minute tour.

pub use minidb;
pub use sieve_core as core;
pub use sieve_workload as workload;
