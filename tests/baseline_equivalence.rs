//! Baseline-equivalence smoke test: on a small seeded campus workload,
//! every enforcement mechanism — the three baseline rewrites of the
//! paper (Baseline I/P/U) and SIEVE's guarded rewrite — returns exactly
//! the row set of the `semantics::visible_rows` oracle, for several
//! queriers and purposes on both database profiles.

use sieve::core::baselines::Baseline;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::visible_rows;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::{DbProfile, Row, SelectQuery, Value};
use sieve::workload::policy_gen::{generate_policies, PolicyGenConfig};
use sieve::workload::tippers::{generate as generate_tippers, TippersConfig};
use sieve::workload::{UserProfile, WIFI_TABLE};

fn campus(profile: DbProfile) -> (Sieve, sieve::workload::TippersDataset) {
    let mut db = sieve::minidb::Database::new(profile);
    let ds = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 5,
            scale: 0.003,
            days: 25,
        },
    )
    .unwrap();
    let policies = generate_policies(&ds, &PolicyGenConfig::default());
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    *sieve.groups_mut() = ds.groups.clone();
    sieve.add_policies(policies).unwrap();
    (sieve, ds)
}

#[test]
fn all_mechanisms_equal_oracle_on_seeded_campus() {
    for profile in [DbProfile::MySqlLike, DbProfile::PostgresLike] {
        let (mut sieve, ds) = campus(profile);
        let queriers: Vec<i64> = [UserProfile::Faculty, UserProfile::Grad, UserProfile::Visitor]
            .iter()
            .filter_map(|p| ds.devices_of(*p).next().map(|d| d.id))
            .collect();
        assert!(!queriers.is_empty(), "dataset must contain queriers");

        let q = SelectQuery::star_from(WIFI_TABLE);
        for querier in &queriers {
            for purpose in ["Analytics", "Safety"] {
                let qm = QueryMetadata::new(*querier, purpose);
                let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
                    sieve.policies(),
                    WIFI_TABLE,
                    &qm,
                    sieve.groups(),
                );
                let mut expect: Vec<Row> =
                    visible_rows(sieve.db(), WIFI_TABLE, &relevant).unwrap();
                expect.sort();
                for e in [
                    Enforcement::Sieve,
                    Enforcement::Baseline(Baseline::I),
                    Enforcement::Baseline(Baseline::P),
                    Enforcement::Baseline(Baseline::U),
                ] {
                    let (res, _) = sieve.run_timed(e, &q, &qm);
                    let mut got = res.expect("mechanism must run").rows;
                    got.sort();
                    assert_eq!(
                        got, expect,
                        "{e:?} diverged from oracle for querier {querier} / {purpose} on {profile:?}"
                    );
                }
            }
        }

        // Warm-cache invalidation path: the guard cache is now hot for
        // every (querier, purpose). Insert a fresh policy per querier and
        // re-check SIEVE against the oracle — the cached entry must be
        // invalidated and the regenerated answer must match a cold run.
        for (i, querier) in queriers.iter().enumerate() {
            sieve
                .add_policy(Policy::new(
                    (1_000 + i) as i64, // an owner with no rows: exercises
                    WIFI_TABLE,         // invalidation without changing the
                    QuerierSpec::User(*querier), // visible set
                    "Analytics",
                    vec![],
                ))
                .unwrap();
            sieve
                .add_policy(Policy::new(
                    *querier, // the querier's own device rows: widens the set
                    WIFI_TABLE,
                    QuerierSpec::User(*querier),
                    "Analytics",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Ne(Value::Int(-1)),
                    )],
                ))
                .unwrap();
            let qm = QueryMetadata::new(*querier, "Analytics");
            let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
                sieve.policies(),
                WIFI_TABLE,
                &qm,
                sieve.groups(),
            );
            let mut expect: Vec<Row> =
                visible_rows(sieve.db(), WIFI_TABLE, &relevant).unwrap();
            expect.sort();
            let mut warm = sieve.execute(&q, &qm).expect("warm post-insert").rows;
            warm.sort();
            assert_eq!(
                warm, expect,
                "warm cache diverged from oracle after add_policy for querier \
                 {querier} on {profile:?}"
            );
            sieve.invalidate_all();
            let mut cold = sieve.execute(&q, &qm).expect("cold post-insert").rows;
            cold.sort();
            assert_eq!(
                cold, warm,
                "cold and warm runs diverged after add_policy for querier \
                 {querier} on {profile:?}"
            );
        }
    }
}
