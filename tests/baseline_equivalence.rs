//! Baseline-equivalence smoke test: on a small seeded campus workload,
//! every enforcement mechanism — the three baseline rewrites of the
//! paper (Baseline I/P/U) and SIEVE's guarded rewrite — returns exactly
//! the row set of the `semantics::visible_rows` oracle, for several
//! queriers and purposes on both database profiles, and (the trait-seam
//! pin) on **every execution backend**: the in-process `MinidbBackend`
//! and the `WireSqlBackend`, whose queries survive a render → parse
//! round trip before execution.

use sieve::core::backend::{for_each_backend, DynBackend};
use sieve::core::baselines::Baseline;
use sieve::core::middleware::{Enforcement, Sieve as GenericSieve};
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::visible_rows;
use sieve::core::SieveOptions;
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, Value};
use sieve::workload::policy_gen::{generate_policies, PolicyGenConfig};
use sieve::workload::tippers::{generate as generate_tippers, TippersConfig};
use sieve::workload::{UserProfile, WIFI_TABLE};

/// The campus fixture, backend-agnostic: the loaded database, the policy
/// corpus, and the dataset metadata. Each backend run gets its own deep
/// copy of the database, so nothing leaks across backends.
fn campus(profile: DbProfile) -> (Database, Vec<Policy>, sieve::workload::TippersDataset) {
    let mut db = Database::new(profile);
    let ds = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 5,
            scale: 0.003,
            days: 25,
        },
    )
    .unwrap();
    let policies = generate_policies(&ds, &PolicyGenConfig::default());
    (db, policies, ds)
}

/// The full equivalence check against one ready (policies + groups
/// registered) sieve. `db` is the oracle's database — identical content
/// to the sieve's backend (policy persistence is off, so enforcement
/// never mutates tables).
fn check_all_mechanisms(
    backend_name: &str,
    sieve: &mut GenericSieve<DynBackend>,
    db: &Database,
    queriers: &[i64],
    profile: DbProfile,
) {
    let q = SelectQuery::star_from(WIFI_TABLE);
    for querier in queriers {
        for purpose in ["Analytics", "Safety"] {
            let qm = QueryMetadata::new(*querier, purpose);
            let policies = sieve.policies();
            let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
                policies.iter(),
                WIFI_TABLE,
                &qm,
                &sieve.groups(),
            );
            let mut expect: Vec<Row> = visible_rows(db, WIFI_TABLE, &relevant).unwrap();
            expect.sort();
            for e in [
                Enforcement::Sieve,
                Enforcement::Baseline(Baseline::I),
                Enforcement::Baseline(Baseline::P),
                Enforcement::Baseline(Baseline::U),
            ] {
                let (res, _) = sieve.run_timed(e, &q, &qm);
                let mut got = res.expect("mechanism must run").rows;
                got.sort();
                assert_eq!(
                    got, expect,
                    "{e:?} diverged from oracle for querier {querier} / {purpose} \
                     on {profile:?} via backend {backend_name}"
                );
            }
        }
    }

    // Warm-cache invalidation path: the guard cache is now hot for
    // every (querier, purpose). Insert a fresh policy per querier and
    // re-check SIEVE against the oracle — the cached entry must be
    // invalidated and the regenerated answer must match a cold run.
    for (i, querier) in queriers.iter().enumerate() {
        sieve
            .add_policy(Policy::new(
                (1_000 + i) as i64, // an owner with no rows: exercises
                WIFI_TABLE,         // invalidation without changing the
                QuerierSpec::User(*querier), // visible set
                "Analytics",
                vec![],
            ))
            .unwrap();
        sieve
            .add_policy(Policy::new(
                *querier, // the querier's own device rows: widens the set
                WIFI_TABLE,
                QuerierSpec::User(*querier),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Ne(Value::Int(-1)),
                )],
            ))
            .unwrap();
        let qm = QueryMetadata::new(*querier, "Analytics");
        let policies = sieve.policies();
        let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
            policies.iter(),
            WIFI_TABLE,
            &qm,
            &sieve.groups(),
        );
        let mut expect: Vec<Row> = visible_rows(db, WIFI_TABLE, &relevant).unwrap();
        expect.sort();
        let mut warm = sieve.execute(&q, &qm).expect("warm post-insert").rows;
        warm.sort();
        assert_eq!(
            warm, expect,
            "warm cache diverged from oracle after add_policy for querier \
             {querier} on {profile:?} via backend {backend_name}"
        );
        sieve.invalidate_all();
        let mut cold = sieve.execute(&q, &qm).expect("cold post-insert").rows;
        cold.sort();
        assert_eq!(
            cold, warm,
            "cold and warm runs diverged after add_policy for querier \
             {querier} on {profile:?} via backend {backend_name}"
        );
    }
}

/// Deny policies, factored into the allow set per paper Section 3.1,
/// enforce `allow ∧ ¬deny` on **every mechanism and every backend** —
/// with Double endpoint literals over an Int column, so mixed numerics
/// must compare numerically end to end (engine, renderer, oracle) and the
/// fractional bounds must survive the wire (the round-trip bug rendered
/// `1000.5` fine but `1000.0` as `1000`, silently retyping the guard).
#[test]
fn deny_factored_policies_hold_across_mechanisms_and_backends() {
    use sieve::core::deny::factor_deny;
    let (db, _policies, ds) = campus(DbProfile::MySqlLike);
    let querier = [UserProfile::Faculty, UserProfile::Grad, UserProfile::Visitor]
        .iter()
        .filter_map(|p| ds.devices_of(*p).next().map(|d| d.id))
        .next()
        .expect("dataset must contain a querier");
    // wifi_dataset column order: id, wifi_ap, owner, ts_time, ts_date.
    let (ap_at, owner_at) = (1usize, 2usize);
    let own_aps: Vec<i64> = db
        .table(WIFI_TABLE)
        .unwrap()
        .table
        .rows()
        .iter()
        .filter(|r| r[owner_at] == Value::Int(querier))
        .map(|r| r[ap_at].as_int().unwrap())
        .collect();
    assert!(!own_aps.is_empty(), "querier must own rows");
    let lo = *own_aps.iter().min().unwrap();
    let hi = *own_aps.iter().max().unwrap();
    assert!(lo < hi, "device must visit more than one AP");
    let mid = (lo + hi) / 2;

    // Allow all own rows; deny the lower half of the AP range with
    // fractional Double bounds.
    let allow = Policy::new(
        querier,
        WIFI_TABLE,
        QuerierSpec::User(querier),
        "Analytics",
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Ne(Value::Int(-1)),
        )],
    );
    let deny_conditions = vec![ObjectCondition::new(
        "wifi_ap",
        CondPredicate::between(
            Value::Double(lo as f64 - 0.5),
            Value::Double(mid as f64 + 0.5),
        ),
    )];
    let factored = factor_deny(&allow, &deny_conditions).unwrap();
    assert!(!factored.is_empty(), "factoring must produce allow policies");

    // Manual allow ∧ ¬deny: the querier's rows at APs above the midpoint.
    let mut expect: Vec<Row> = db
        .table(WIFI_TABLE)
        .unwrap()
        .table
        .rows()
        .iter()
        .filter(|r| r[owner_at] == Value::Int(querier) && r[ap_at].as_int().unwrap() > mid)
        .cloned()
        .collect();
    expect.sort();
    assert!(!expect.is_empty(), "some rows must survive the deny");
    assert!(expect.len() < own_aps.len(), "the deny must remove rows");

    let q = SelectQuery::star_from(WIFI_TABLE);
    let qm = QueryMetadata::new(querier, "Analytics");
    let mut backends = 0;
    for_each_backend(&db, &SieveOptions::default(), |name, mut sieve| {
        backends += 1;
        sieve.add_policies(factored.iter().cloned()).unwrap();
        // The algebra oracle over the factored set must equal the manual
        // allow ∧ ¬deny set — pins `factor_deny` itself.
        let policies = sieve.policies();
        let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
            policies.iter(),
            WIFI_TABLE,
            &qm,
            &sieve.groups(),
        );
        let mut oracle = visible_rows(&db, WIFI_TABLE, &relevant).unwrap();
        oracle.sort();
        assert_eq!(oracle, expect, "factor_deny diverged from allow ∧ ¬deny on {name}");
        for e in [
            Enforcement::Sieve,
            Enforcement::Baseline(Baseline::I),
            Enforcement::Baseline(Baseline::P),
            Enforcement::Baseline(Baseline::U),
        ] {
            let (res, _) = sieve.run_timed(e, &q, &qm);
            let mut got = res.expect("mechanism must run").rows;
            got.sort();
            assert_eq!(got, expect, "{e:?} leaked denied rows on backend {name}");
        }
    });
    assert_eq!(backends, if cfg!(feature = "wire-sql") { 2 } else { 1 });
}

#[test]
fn all_mechanisms_equal_oracle_on_seeded_campus_for_every_backend() {
    for profile in [DbProfile::MySqlLike, DbProfile::PostgresLike] {
        let (db, policies, ds) = campus(profile);
        let queriers: Vec<i64> = [UserProfile::Faculty, UserProfile::Grad, UserProfile::Visitor]
            .iter()
            .filter_map(|p| ds.devices_of(*p).next().map(|d| d.id))
            .collect();
        assert!(!queriers.is_empty(), "dataset must contain queriers");

        // Results must be identical across backends, not just oracle-equal
        // per backend: collect a fingerprint per backend and compare.
        let mut fingerprints: Vec<(&'static str, Vec<Row>)> = Vec::new();
        for_each_backend(&db, &SieveOptions::default(), |name, mut sieve| {
            *sieve.groups_mut() = ds.groups.clone();
            sieve.add_policies(policies.iter().cloned()).unwrap();
            check_all_mechanisms(name, &mut sieve, &db, &queriers, profile);
            let qm = QueryMetadata::new(queriers[0], "Analytics");
            let mut rows = sieve
                .execute(&SelectQuery::star_from(WIFI_TABLE), &qm)
                .expect("fingerprint query")
                .rows;
            rows.sort();
            fingerprints.push((name, rows));
        });
        let expected_backends = if cfg!(feature = "wire-sql") { 2 } else { 1 };
        assert_eq!(
            fingerprints.len(),
            expected_backends,
            "suite must cover every available backend"
        );
        for pair in fingerprints.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "backends {} and {} returned different rows on {profile:?}",
                pair[0].0, pair[1].0
            );
        }
    }
}
