//! Baseline-equivalence smoke test: on a small seeded campus workload,
//! every enforcement mechanism — the three baseline rewrites of the
//! paper (Baseline I/P/U) and SIEVE's guarded rewrite — returns exactly
//! the row set of the `semantics::visible_rows` oracle, for several
//! queriers and purposes on both database profiles.

use sieve::core::baselines::Baseline;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::{Policy, QueryMetadata};
use sieve::core::semantics::visible_rows;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::{DbProfile, Row, SelectQuery};
use sieve::workload::policy_gen::{generate_policies, PolicyGenConfig};
use sieve::workload::tippers::{generate as generate_tippers, TippersConfig};
use sieve::workload::{UserProfile, WIFI_TABLE};

fn campus(profile: DbProfile) -> (Sieve, sieve::workload::TippersDataset) {
    let mut db = sieve::minidb::Database::new(profile);
    let ds = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 5,
            scale: 0.003,
            days: 25,
        },
    )
    .unwrap();
    let policies = generate_policies(&ds, &PolicyGenConfig::default());
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    *sieve.groups_mut() = ds.groups.clone();
    sieve.add_policies(policies).unwrap();
    (sieve, ds)
}

#[test]
fn all_mechanisms_equal_oracle_on_seeded_campus() {
    for profile in [DbProfile::MySqlLike, DbProfile::PostgresLike] {
        let (mut sieve, ds) = campus(profile);
        let queriers: Vec<i64> = [UserProfile::Faculty, UserProfile::Grad, UserProfile::Visitor]
            .iter()
            .filter_map(|p| ds.devices_of(*p).next().map(|d| d.id))
            .collect();
        assert!(!queriers.is_empty(), "dataset must contain queriers");

        let q = SelectQuery::star_from(WIFI_TABLE);
        for querier in queriers {
            for purpose in ["Analytics", "Safety"] {
                let qm = QueryMetadata::new(querier, purpose);
                let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
                    sieve.policies(),
                    WIFI_TABLE,
                    &qm,
                    sieve.groups(),
                );
                let mut expect: Vec<Row> =
                    visible_rows(sieve.db(), WIFI_TABLE, &relevant).unwrap();
                expect.sort();
                for e in [
                    Enforcement::Sieve,
                    Enforcement::Baseline(Baseline::I),
                    Enforcement::Baseline(Baseline::P),
                    Enforcement::Baseline(Baseline::U),
                ] {
                    let (res, _) = sieve.run_timed(e, &q, &qm);
                    let mut got = res.expect("mechanism must run").rows;
                    got.sort();
                    assert_eq!(
                        got, expect,
                        "{e:?} diverged from oracle for querier {querier} / {purpose} on {profile:?}"
                    );
                }
            }
        }
    }
}
