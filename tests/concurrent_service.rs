//! Concurrency correctness for the shared-`&self` middleware.
//!
//! The contract under test: N threads driving M sessions against ONE
//! `SieveService` — with policy insertions, out-of-band data loads and
//! prepared-statement reuse interleaved — must return **exactly** the
//! rows the single-threaded oracle returns. Enforcement under contention
//! is not allowed to leak a row, drop a row, or serve a guard that
//! predates a returned `add_policy`.

use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::visible_rows;
use sieve::core::{
    backend::for_each_backend, Session, Sieve, SieveOptions, SieveService,
};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, TableSchema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const REL: &str = "wifi_dataset";
/// Queriers covered by the policy corpus; each sees a distinct AP slice.
const QUERIERS: [i64; 4] = [500, 501, 502, 503];

fn policy(owner: i64, querier: i64, purpose: &str, ap: i64) -> Policy {
    Policy::new(
        owner,
        REL,
        QuerierSpec::User(querier),
        purpose,
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(ap)),
        )],
    )
}

fn loaded_db() -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..4000i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 80),
                Value::Int(1000 + i % 10),
                Value::Time(((i * 53) % 86400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

/// Register the corpus: querier 500+k reads owners 0..20 at AP 1001+k.
fn register_corpus(add: &mut dyn FnMut(Policy)) {
    for (k, &querier) in QUERIERS.iter().enumerate() {
        for owner in 0..20i64 {
            add(policy(owner, querier, "Analytics", 1001 + k as i64));
        }
    }
}

fn loaded_service() -> SieveService {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    register_corpus(&mut |p| {
        service.add_policy(p).unwrap();
    });
    service
}

/// Single-threaded expected rows for a querier, straight from the policy
/// algebra oracle (no middleware involved).
fn oracle_for(service: &SieveService, qm: &QueryMetadata) -> Vec<Row> {
    let policies = service.policies();
    let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
        policies.iter(),
        REL,
        qm,
        &service.groups(),
    );
    let mut rows = visible_rows(&*service.db(), REL, &relevant).unwrap();
    rows.sort();
    rows
}

fn sorted_rows(res: sieve::minidb::QueryResult) -> Vec<Row> {
    let mut rows = res.rows;
    rows.sort();
    rows
}

/// N threads × M sessions hammering one service: every single result must
/// be row-identical to the single-threaded oracle, on both backends.
#[test]
fn hammer_threads_and_sessions_match_single_threaded_oracle() {
    let options = SieveOptions::default();
    for_each_backend(&loaded_db(), &options, |backend_name, sieve| {
        let mut sieve = sieve;
        register_corpus(&mut |p| {
            sieve.add_policy(p).unwrap();
        });
        let service = sieve.into_service();
        // Oracles computed up front, single-threaded.
        let oracles: Vec<(QueryMetadata, Vec<Row>)> = QUERIERS
            .iter()
            .map(|&u| {
                let qm = QueryMetadata::new(u, "Analytics");
                let policies = service.policies();
                let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
                    policies.iter(),
                    REL,
                    &qm,
                    &service.groups(),
                );
                let backend = service.backend();
                let mut rows = visible_rows(&*backend, REL, &relevant).unwrap();
                rows.sort();
                assert!(!rows.is_empty(), "oracle empty for querier {u}");
                (qm, rows)
            })
            .collect();
        let q = SelectQuery::star_from(REL);
        // Warm the cache single-threaded so the storm below exercises the
        // concurrent *hit* path with a deterministic generation count.
        for (qm, _) in &oracles {
            service.execute(&q, qm).unwrap();
        }
        assert_eq!(service.generations(), QUERIERS.len() as u64);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let service = service.clone();
                let oracles = &oracles;
                let q = &q;
                s.spawn(move || {
                    // Each thread drives every querier's session — maximal
                    // cross-thread sharing of the same cache keys.
                    let sessions: Vec<(Session<_>, &Vec<Row>)> = oracles
                        .iter()
                        .map(|(qm, expect)| (service.session(qm.clone()), expect))
                        .collect();
                    for i in 0..12 {
                        for (session, expect) in &sessions {
                            let rows = sorted_rows(session.execute(q).unwrap());
                            assert_eq!(
                                &rows, *expect,
                                "thread {t} iter {i} diverged on {backend_name} for \
                                 querier {}",
                                session.metadata().querier
                            );
                        }
                    }
                });
            }
        });
        // The shared cache served all threads: one generation per
        // querier, zero spurious regenerations under contention.
        assert_eq!(service.generations(), QUERIERS.len() as u64);
    });
}

/// A policy inserted concurrently with a query storm: every observed
/// result is either the pre-insert or the post-insert row set (a query is
/// atomic w.r.t. the insert), and any query that *starts after
/// `add_policy` returned* must see the post set — no stale guards.
#[test]
fn interleaved_add_policy_is_never_served_stale() {
    let service = loaded_service();
    let qm = QueryMetadata::new(500, "Analytics");
    let pre = oracle_for(&service, &qm);
    // Owner 71 at AP 1001 (owner 71 ⇒ id%10 == 1 ⇒ rows at AP 1001 exist).
    let extra = policy(71, 500, "Analytics", 1001);
    let post = {
        // Compute the post-insert oracle on a scratch clone of the state.
        let scratch = loaded_service();
        scratch.add_policy(extra.clone()).unwrap();
        oracle_for(&scratch, &qm)
    };
    assert!(post.len() > pre.len());

    let inserted = AtomicBool::new(false);
    let q = SelectQuery::star_from(REL);
    std::thread::scope(|s| {
        for _ in 0..3 {
            let service = service.clone();
            let (inserted, q, qm, pre, post) = (&inserted, &q, &qm, &pre, &post);
            s.spawn(move || {
                let session = service.session(qm.clone());
                loop {
                    let started_after_insert = inserted.load(Ordering::SeqCst);
                    let rows = sorted_rows(session.execute(q).unwrap());
                    if started_after_insert {
                        assert_eq!(&rows, post, "stale guard served after add_policy returned");
                        return; // saw the final state — done
                    }
                    assert!(
                        &rows == pre || &rows == post,
                        "result is neither pre- nor post-insert set (len {})",
                        rows.len()
                    );
                }
            });
        }
        // Let the readers warm the cache, then insert mid-storm.
        let warmup = sorted_rows(service.execute(&q, &qm).unwrap());
        assert_eq!(warmup, pre);
        service.add_policy(extra.clone()).unwrap();
        inserted.store(true, Ordering::SeqCst);
    });
    // Quiesced: the final state is exactly the post oracle.
    assert_eq!(sorted_rows(service.execute(&q, &qm).unwrap()), post);
    assert_eq!(oracle_for(&service, &qm), post);
}

/// `Prepared` lifecycle: while nothing changes, execute skips re-rewrites
/// entirely; a backend-epoch bump (out-of-band insert) or a revision bump
/// (add_policy) transparently re-prepares, and the replayed results are
/// correct each time.
#[test]
fn prepared_statement_reprepares_on_epoch_and_revision_bumps() {
    let service = loaded_service();
    let session = service.session(QueryMetadata::new(500, "Analytics"));
    let q = SelectQuery::star_from(REL);
    let prepared = session.prepare(q.clone()).unwrap();
    let n0 = prepared.execute().unwrap().len();
    assert_eq!(n0, oracle_for(&service, session.metadata()).len());
    prepared.execute().unwrap();
    prepared.execute().unwrap();
    assert_eq!(prepared.reprepares(), 0, "fresh plan must be replayed as-is");

    // Out-of-band data load → backend epoch bump → transparent re-prepare
    // AND the new rows enforced + visible.
    service.with_db_mut(|db| {
        for i in 0..5i64 {
            db.insert(
                REL,
                vec![
                    Value::Int(100_000 + i),
                    Value::Int(0),
                    Value::Int(1001),
                    Value::Time(0),
                ],
            )
            .unwrap();
        }
    });
    let n1 = prepared.execute().unwrap().len();
    assert_eq!(n1, n0 + 5, "re-prepared plan must see the out-of-band rows");
    assert_eq!(prepared.reprepares(), 1);
    prepared.execute().unwrap();
    assert_eq!(prepared.reprepares(), 1, "one bump, one re-prepare");

    // Policy insert → revision bump → re-prepare with the wider guard.
    service.add_policy(policy(71, 500, "Analytics", 1001)).unwrap();
    let n2 = prepared.execute().unwrap().len();
    assert!(n2 > n1, "new policy must widen the prepared statement's view");
    assert_eq!(n2, oracle_for(&service, session.metadata()).len());
    assert_eq!(prepared.reprepares(), 2);
}

/// One `Prepared` handle shared (via `Arc`) by several threads: all
/// replays agree with the oracle and no re-prepare happens while the
/// world is unchanged.
#[test]
fn prepared_statement_is_shareable_across_threads() {
    let service = loaded_service();
    let session = service.session(QueryMetadata::new(501, "Analytics"));
    let expect = oracle_for(&service, session.metadata());
    let prepared = Arc::new(session.prepare(SelectQuery::star_from(REL)).unwrap());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let prepared = Arc::clone(&prepared);
            let expect = &expect;
            s.spawn(move || {
                for _ in 0..10 {
                    assert_eq!(&sorted_rows(prepared.execute().unwrap()), expect);
                }
            });
        }
    });
    assert_eq!(prepared.reprepares(), 0);
}

/// On a wire backend, a `Prepared` handle pins a server-side statement:
/// warm executes ship no SQL text, a revision bump swaps in a fresh
/// statement (closing the stale one once its plan drops), and dropping
/// the handle closes its statement.
#[cfg(feature = "wire-sql")]
#[test]
fn prepared_pins_and_recycles_wire_statements() {
    use sieve::core::backend::WireSqlBackend;
    let mut sieve =
        Sieve::with_backend(WireSqlBackend::new(loaded_db()), SieveOptions::default()).unwrap();
    register_corpus(&mut |p| {
        sieve.add_policy(p).unwrap();
    });
    let service = sieve.into_service();
    let session = service.session(QueryMetadata::new(500, "Analytics"));
    let prepared = session.prepare(SelectQuery::star_from(REL)).unwrap();
    let id0 = prepared
        .statement_id()
        .expect("wire backend must prepare a server-side statement");
    assert_eq!(service.backend().open_statements(), 1);
    let n0 = prepared.execute().unwrap().len();
    assert!(n0 > 0);
    let trips = service.backend().round_trips();
    for _ in 0..10 {
        assert_eq!(prepared.execute().unwrap().len(), n0);
    }
    assert_eq!(
        service.backend().round_trips(),
        trips,
        "warm prepared executes must not ship SQL text across the wire"
    );
    // Revision bump → transparent re-prepare under a fresh statement id;
    // the stale statement closes when the old plan's last holder drops.
    service.add_policy(policy(71, 500, "Analytics", 1001)).unwrap();
    let n1 = prepared.execute().unwrap().len();
    assert!(n1 > n0, "new policy must widen the prepared statement's view");
    let id1 = prepared.statement_id().unwrap();
    assert_ne!(id0, id1, "re-prepare must produce a fresh statement");
    assert_eq!(
        service.backend().open_statements(),
        1,
        "the stale statement must have been closed server-side"
    );
    drop(prepared);
    assert_eq!(
        service.backend().open_statements(),
        0,
        "dropping the handle must close its statement"
    );
}

/// The parallel per-querier batch phase must produce byte-identical
/// results to the sequential schedule — same generations, same rows.
#[test]
fn parallel_prepare_batch_matches_sequential() {
    let q = SelectQuery::star_from(REL);
    // 16 queriers — comfortably past the parallel-engagement floor, and
    // including queriers with empty policy slices (deny-all guards).
    let requests: Vec<(QueryMetadata, SelectQuery)> = (500i64..516)
        .map(|u| (QueryMetadata::new(u, "Analytics"), q.clone()))
        .collect();

    let sequential = loaded_service();
    let report_seq = sequential.prepare_batch_with_threads(&requests, 1).unwrap();
    let parallel = loaded_service();
    let report_par = parallel.prepare_batch_with_threads(&requests, 4).unwrap();
    assert_eq!(report_seq.generated, report_par.generated);
    assert_eq!(report_seq.reused, report_par.reused);
    assert_eq!(sequential.generations(), parallel.generations());

    for (qm, query) in &requests {
        let a = sorted_rows(sequential.execute(query, qm).unwrap());
        let b = sorted_rows(parallel.execute(query, qm).unwrap());
        assert_eq!(a, b, "parallel batch diverged for querier {}", qm.querier);
        assert_eq!(a, oracle_for(&sequential, qm), "batch diverged from oracle");
    }
    // Both schedules warm the cache equally: executing is all hits.
    assert_eq!(
        sequential.cache_stats().generations(),
        parallel.cache_stats().generations()
    );
}

/// Concurrent `execute_sql` of the same text shares one parsed AST.
#[test]
fn concurrent_execute_sql_shares_the_parsed_ast() {
    let service = loaded_service();
    let sql = "SELECT COUNT(*) AS n FROM wifi_dataset WHERE wifi_ap = 1001";
    let expect = {
        let qm = QueryMetadata::new(500, "Analytics");
        oracle_for(&service, &qm).len() as i64
    };
    std::thread::scope(|s| {
        for _ in 0..4 {
            let service = service.clone();
            s.spawn(move || {
                let qm = QueryMetadata::new(500, "Analytics");
                for _ in 0..8 {
                    let res = service.execute_sql(sql, &qm).unwrap();
                    assert_eq!(res.rows[0][0].as_int().unwrap(), expect);
                }
            });
        }
    });
    assert_eq!(service.sql_cache_len(), 1, "one text, one cached AST");
    assert!(service.sql_cache_contains(sql));
}

/// The single-owner façade escape hatches refuse to run while the
/// service is shared (they need exclusive ownership), instead of
/// silently mutating state other threads rely on.
#[test]
fn facade_mut_accessors_guard_against_live_clones() {
    let mut sieve = Sieve::new(loaded_db(), SieveOptions::default()).unwrap();
    // Exclusive: fine.
    sieve.db_mut();
    let clone = sieve.service().clone();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = sieve.db_mut();
    }))
    .is_err();
    assert!(panicked, "db_mut with a live service clone must refuse");
    drop(clone);
    // Exclusive again: fine.
    sieve.db_mut();
}
