//! Cross-crate correctness: every enforcement mechanism (SIEVE with every
//! strategy/∆ combination, and the three baselines) must produce exactly
//! the reference-oracle answer, on both optimizer profiles — the paper's
//! "sound and secure" criterion (Section 3.1).

use sieve::core::baselines::Baseline;
use sieve::core::cost::AccessStrategy;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::rewrite::DeltaMode;
use sieve::core::semantics::visible_rows;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, TableSchema};

fn build_sieve(profile: DbProfile) -> Sieve {
    let mut db = Database::new(profile);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
            ("ts_date", DataType::Date),
        ],
    ))
    .unwrap();
    for i in 0..6000i64 {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % 97),
                Value::Int(1000 + i % 13),
                Value::Time(((i * 197) % 86_400) as u32),
                Value::Date(18_000 + (i % 90) as i32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time", "ts_date"] {
        db.create_index("wifi_dataset", col).unwrap();
    }
    db.analyze("wifi_dataset").unwrap();

    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    sieve.groups_mut().add_member(5, 500); // querier 500 in group 5
    // A mixed policy corpus: user- and group-targeted, equality, range,
    // IN-list, and varied purposes.
    for i in 0..40i64 {
        let owner = i % 20;
        let querier = if i % 3 == 0 {
            QuerierSpec::Group(5)
        } else {
            QuerierSpec::User(500)
        };
        let purpose = if i % 4 == 0 { "Any" } else { "Analytics" };
        let cond = match i % 4 {
            0 => ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1000 + i % 13))),
            1 => ObjectCondition::new(
                "ts_time",
                CondPredicate::between(
                    Value::Time(((i % 12) * 7200) as u32),
                    Value::Time((((i % 12) * 7200) + 10_000).min(86_399) as u32),
                ),
            ),
            2 => ObjectCondition::new(
                "wifi_ap",
                CondPredicate::In(vec![Value::Int(1001), Value::Int(1002), Value::Int(1003)]),
            ),
            _ => ObjectCondition::new(
                "ts_date",
                CondPredicate::between(Value::Date(18_010), Value::Date(18_060)),
            ),
        };
        sieve
            .add_policy(Policy::new(
                owner,
                "wifi_dataset",
                querier,
                purpose,
                vec![cond],
            ))
            .unwrap();
    }
    sieve
}

fn oracle(sieve: &Sieve, qm: &QueryMetadata) -> Vec<Row> {
    let policies = sieve.policies();
    let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
        policies.iter(),
        "wifi_dataset",
        qm,
        &sieve.groups(),
    );
    let mut rows = visible_rows(&*sieve.db(), "wifi_dataset", &relevant).unwrap();
    rows.sort();
    rows
}

fn run_sorted(sieve: &mut Sieve, e: Enforcement, q: &SelectQuery, qm: &QueryMetadata) -> Vec<Row> {
    let (res, _) = sieve.run_timed(e, q, qm);
    let mut rows = res.expect("query must succeed").rows;
    rows.sort();
    rows
}

#[test]
fn all_mechanisms_equal_oracle_on_both_profiles() {
    for profile in [DbProfile::MySqlLike, DbProfile::PostgresLike] {
        let mut sieve = build_sieve(profile);
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("wifi_dataset");
        let expect = oracle(&sieve, &qm);
        assert!(!expect.is_empty(), "oracle must be non-trivial");
        for e in [
            Enforcement::Sieve,
            Enforcement::Baseline(Baseline::P),
            Enforcement::Baseline(Baseline::I),
            Enforcement::Baseline(Baseline::U),
        ] {
            let got = run_sorted(&mut sieve, e, &q, &qm);
            assert_eq!(got, expect, "{e:?} on {profile:?} diverged from oracle");
        }
    }
}

#[test]
fn every_strategy_and_delta_mode_is_equivalent() {
    let qm = QueryMetadata::new(500, "Analytics");
    let q = SelectQuery::star_from("wifi_dataset");
    let mut reference: Option<Vec<Row>> = None;
    for strategy in [
        None,
        Some(AccessStrategy::LinearScan),
        Some(AccessStrategy::IndexQuery),
        Some(AccessStrategy::IndexGuards),
    ] {
        for delta in [DeltaMode::Auto, DeltaMode::Never, DeltaMode::Always] {
            let mut sieve = build_sieve(DbProfile::MySqlLike);
            sieve.options_mut().rewrite.forced_strategy = strategy;
            sieve.options_mut().rewrite.delta_mode = delta;
            let got = run_sorted(&mut sieve, Enforcement::Sieve, &q, &qm);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(
                    &got, r,
                    "strategy {strategy:?} with delta {delta:?} diverged"
                ),
            }
        }
    }
    assert!(!reference.unwrap().is_empty());
}

#[test]
fn query_predicates_compose_with_policies() {
    let mut sieve = build_sieve(DbProfile::PostgresLike);
    let qm = QueryMetadata::new(500, "Analytics");
    let q = sieve::minidb::sql::parse(
        "SELECT * FROM wifi_dataset WHERE wifi_ap IN (1001, 1002) \
         AND ts_time BETWEEN '06:00' AND '18:00'",
    )
    .unwrap();
    let oracle_rows: Vec<Row> = oracle(&sieve, &qm)
        .into_iter()
        .filter(|r| {
            let ap = r[2].as_int().unwrap();
            let t = r[3].as_time().unwrap();
            (ap == 1001 || ap == 1002) && (6 * 3600..=18 * 3600).contains(&t)
        })
        .collect();
    for e in [
        Enforcement::Sieve,
        Enforcement::Baseline(Baseline::P),
        Enforcement::Baseline(Baseline::I),
        Enforcement::Baseline(Baseline::U),
    ] {
        let got = run_sorted(&mut sieve, e, &q, &qm);
        assert_eq!(got, oracle_rows, "{e:?} with query predicate diverged");
    }
}

#[test]
fn aggregation_happens_after_enforcement() {
    // Policies must be enforced before non-monotonic operations
    // (Section 3.1): a COUNT under enforcement must count only visible
    // rows, never leak the raw count.
    let mut sieve = build_sieve(DbProfile::MySqlLike);
    let qm = QueryMetadata::new(500, "Analytics");
    let visible = oracle(&sieve, &qm).len() as i64;
    let res = sieve
        .execute_sql("SELECT COUNT(*) AS n FROM wifi_dataset", &qm)
        .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(visible));
    let raw = sieve.db().table("wifi_dataset").unwrap().table.len() as i64;
    assert!(visible < raw, "test needs a non-trivial policy filter");
}

#[test]
fn group_by_respects_enforcement() {
    let mut sieve = build_sieve(DbProfile::MySqlLike);
    let qm = QueryMetadata::new(500, "Analytics");
    let res = sieve
        .execute_sql(
            "SELECT wifi_ap, COUNT(*) AS n FROM wifi_dataset GROUP BY wifi_ap",
            &qm,
        )
        .unwrap();
    let oracle_rows = oracle(&sieve, &qm);
    // Sum of group counts equals total visible rows.
    let total: i64 = res.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total as usize, oracle_rows.len());
}

#[test]
fn derived_value_policies_enforced() {
    // A policy whose AP is derived from another user's location
    // (Section 3.1's nested policy): owner 1 is visible only where
    // owner 2 also is (same AP, scalar subquery).
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[("id", DataType::Int), ("owner", DataType::Int), ("wifi_ap", DataType::Int)],
    ))
    .unwrap();
    // Owner 2 is at AP 7; owner 1 has rows at APs 7 and 8.
    db.insert("wifi_dataset", vec![Value::Int(0), Value::Int(2), Value::Int(7)])
        .unwrap();
    db.insert("wifi_dataset", vec![Value::Int(1), Value::Int(1), Value::Int(7)])
        .unwrap();
    db.insert("wifi_dataset", vec![Value::Int(2), Value::Int(1), Value::Int(8)])
        .unwrap();
    db.create_index("wifi_dataset", "owner").unwrap();
    db.analyze("wifi_dataset").unwrap();
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    let sub = sieve::minidb::sql::parse(
        "SELECT w2.wifi_ap FROM wifi_dataset AS w2 WHERE w2.owner = 2 LIMIT 1",
    )
    .unwrap();
    sieve
        .add_policy(Policy::new(
            1,
            "wifi_dataset",
            QuerierSpec::User(99),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Derived(Box::new(sub)),
            )],
        ))
        .unwrap();
    let qm = QueryMetadata::new(99, "Anything");
    let rows = sieve
        .execute(&SelectQuery::star_from("wifi_dataset"), &qm)
        .unwrap();
    // Only owner 1's row at AP 7 (where owner 2 is) is visible.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][1], Value::Int(1));
    assert_eq!(rows.rows[0][2], Value::Int(7));
}
