//! Determinism regression tests: the workload generators are seeded, so
//! two runs with the same config must produce byte-identical datasets,
//! policy corpora, generated queries, and query results. This guards
//! against `HashMap`-iteration-order (or other ambient) nondeterminism
//! creeping into the generators — which would silently invalidate every
//! cross-run benchmark comparison.

use sieve::core::policy::{Policy, QueryMetadata};
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::{Database, DbProfile, Row, SelectQuery};
use sieve::workload::mall::{generate as generate_mall, MallConfig};
use sieve::workload::policy_gen::{generate_policies, PolicyGenConfig};
use sieve::workload::query_gen::generate_query;
use sieve::workload::tippers::{generate as generate_tippers, TippersConfig, TippersDataset};
use sieve::workload::{QueryClass, Selectivity, UserProfile, MALL_TABLE, WIFI_TABLE};

fn dump_table(db: &Database, table: &str) -> Vec<Row> {
    db.run_query(&SelectQuery::star_from(table)).unwrap().rows
}

fn campus(seed: u64) -> (Database, TippersDataset) {
    let mut db = Database::new(DbProfile::MySqlLike);
    let ds = generate_tippers(
        &mut db,
        &TippersConfig {
            seed,
            scale: 0.004,
            days: 30,
        },
    )
    .unwrap();
    (db, ds)
}

#[test]
fn tippers_generation_is_deterministic() {
    let (db_a, ds_a) = campus(99);
    let (db_b, ds_b) = campus(99);

    // Same device directory, groups, and bookkeeping (Device does not
    // implement PartialEq; its Debug form is a faithful fingerprint).
    assert_eq!(format!("{ds_a:?}"), format!("{ds_b:?}"));
    assert_eq!(ds_a.events, ds_b.events);

    // Same rows, in the same insertion order, in every generated table.
    for table in [
        "users",
        "user_groups",
        "user_group_membership",
        "location",
        WIFI_TABLE,
    ] {
        assert_eq!(
            dump_table(&db_a, table),
            dump_table(&db_b, table),
            "table {table} differs between identically-seeded runs"
        );
    }

    // A different seed must actually change the data (the comparison
    // above is not vacuous).
    let (db_c, _) = campus(100);
    assert_ne!(dump_table(&db_a, WIFI_TABLE), dump_table(&db_c, WIFI_TABLE));
}

#[test]
fn policy_generation_is_deterministic() {
    let (_, ds) = campus(99);
    let a: Vec<Policy> = generate_policies(&ds, &PolicyGenConfig::default());
    let b: Vec<Policy> = generate_policies(&ds, &PolicyGenConfig::default());
    assert!(!a.is_empty());
    assert_eq!(a, b, "identically-seeded policy corpora differ");
}

#[test]
fn mall_generation_is_deterministic() {
    let config = MallConfig {
        seed: 21,
        scale: 0.02,
        shops: 35,
        days: 30,
    };
    let mut db_a = Database::new(DbProfile::PostgresLike);
    let ds_a = generate_mall(&mut db_a, &config).unwrap();
    let mut db_b = Database::new(DbProfile::PostgresLike);
    let ds_b = generate_mall(&mut db_b, &config).unwrap();

    assert_eq!(format!("{:?}", ds_a.customers), format!("{:?}", ds_b.customers));
    assert_eq!(ds_a.shops, ds_b.shops);
    assert_eq!(ds_a.policies, ds_b.policies);
    assert_eq!(ds_a.events, ds_b.events);
    assert_eq!(dump_table(&db_a, MALL_TABLE), dump_table(&db_b, MALL_TABLE));
}

#[test]
fn query_generation_and_results_are_deterministic() {
    let (db_a, ds_a) = campus(99);
    let (db_b, ds_b) = campus(99);
    let policies = generate_policies(&ds_a, &PolicyGenConfig::default());

    let mut sieve_a = Sieve::new(db_a, SieveOptions::default()).unwrap();
    *sieve_a.groups_mut() = ds_a.groups.clone();
    sieve_a.add_policies(policies.clone()).unwrap();
    let mut sieve_b = Sieve::new(db_b, SieveOptions::default()).unwrap();
    *sieve_b.groups_mut() = ds_b.groups.clone();
    sieve_b.add_policies(policies).unwrap();

    let faculty = ds_a.devices_of(UserProfile::Faculty).next().unwrap().id;
    let qm = QueryMetadata::new(faculty, "Analytics");
    for class in [QueryClass::Q1, QueryClass::Q2, QueryClass::Q3] {
        for (sel, seed) in [(Selectivity::Low, 7), (Selectivity::Mid, 8)] {
            let qa = generate_query(&ds_a, class, sel, seed);
            let qb = generate_query(&ds_b, class, sel, seed);
            assert_eq!(qa, qb, "{class:?}/{sel:?} query generation diverged");
            assert_eq!(
                sieve_a.execute(&qa, &qm).unwrap().rows,
                sieve_b.execute(&qb, &qm).unwrap().rows,
                "{class:?}/{sel:?} enforcement results diverged"
            );
        }
    }
}
