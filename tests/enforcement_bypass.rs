//! Adversarial enforcement-bypass suite: protected relations reached
//! through **nesting** — derived tables, WITH bodies, scalar subqueries,
//! CTE shadowing, and combinations — must be mediated exactly like
//! top-level reads (the incomplete-mediation failure Guarnieri et al.
//! formalize; before the recursive rewriter, every one of these shapes
//! escaped enforcement entirely).
//!
//! The oracle is query-shape-independent: run the *original* query
//! against a database whose protected table holds exactly the
//! `visible_rows` of the querier. Whatever rows that returns is what the
//! rewritten query on the full database must return.
//!
//! Every shape runs against **every execution backend** (`minidb`
//! in-process and `wire-sql`, whose rewritten queries must survive a
//! render → parse round trip), so the suite pins the `SqlBackend` trait
//! seam, not just the embedded engine.

use proptest::prelude::*;
use sieve::core::backend::{for_each_backend, DynBackend};
use sieve::core::baselines::Baseline;
use sieve::core::middleware::{Enforcement, Sieve};
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::visible_rows;
use sieve::core::SieveOptions;
use sieve::minidb::expr::{CmpOp, ColumnRef, Expr};
use sieve::minidb::plan::{AggFunc, IndexHint, SelectItem, TableRef, TableSource};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, TableSchema, Value};

const REL: &str = "wifi_dataset";

fn wifi_schema() -> TableSchema {
    TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    )
}

fn boards_schema() -> TableSchema {
    TableSchema::of("boards", &[("k", DataType::Int), ("label", DataType::Int)])
}

fn load_boards(db: &mut Database) {
    db.create_table(boards_schema()).unwrap();
    for k in 0..64i64 {
        db.insert("boards", vec![Value::Int(k), Value::Int(k % 7)]).unwrap();
    }
}

/// The loaded database under test: protected wifi table + an unprotected
/// helper. Backend-agnostic — each backend run clones it.
fn loaded_db() -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(wifi_schema()).unwrap();
    for i in 0..3000i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 60),
                Value::Int(1000 + i % 10),
                Value::Time(((i * 53) % 86400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index(REL, col).unwrap();
    }
    load_boards(&mut db);
    db.analyze(REL).unwrap();
    db
}

fn corpus() -> Vec<Policy> {
    // Owners 0..15 allow querier 500 to see their rows at AP 1001, plus
    // one unconditional grant so simple shapes return rows.
    let mut policies: Vec<Policy> = (0..15i64)
        .map(|owner| {
            Policy::new(
                owner,
                REL,
                QuerierSpec::User(500),
                "Analytics",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1001)),
                )],
            )
        })
        .collect();
    policies.push(Policy::new(17, REL, QuerierSpec::User(500), "Analytics", vec![]));
    policies
}

/// Run `f` once per backend against a fully loaded sieve, handing along
/// the oracle database (same content as the sieve's backend).
fn for_sieves(mut f: impl FnMut(&'static str, Sieve<DynBackend>, &Database)) {
    let db = loaded_db();
    for_each_backend(&db, &SieveOptions::default(), |name, mut sieve| {
        for p in corpus() {
            sieve.add_policy(p).unwrap();
        }
        f(name, sieve, &db);
    });
}

/// A database identical to the sieve's, except the protected table holds
/// exactly the querier's visible rows. Running the *original* query here
/// yields the expected output for any query shape.
fn visible_database(sieve: &Sieve<DynBackend>, db: &Database, qm: &QueryMetadata) -> Database {
    let policies = sieve.policies();
    let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
        policies.iter(),
        REL,
        qm,
        &sieve.groups(),
    );
    let visible = visible_rows(db, REL, &relevant).unwrap();
    let mut vdb = Database::new(DbProfile::MySqlLike);
    vdb.create_table(wifi_schema()).unwrap();
    for row in visible {
        vdb.insert(REL, row).unwrap();
    }
    load_boards(&mut vdb);
    vdb
}

/// Assert the sieve's output equals the visible-database oracle for the
/// same (unrewritten) query. Returns the row count for non-vacuousness
/// checks at the call site.
fn assert_enforced(
    backend: &str,
    sieve: &mut Sieve<DynBackend>,
    db: &Database,
    qm: &QueryMetadata,
    q: &SelectQuery,
) -> usize {
    let mut got = sieve.execute(q, qm).expect("sieve execute").rows;
    got.sort();
    let vdb = visible_database(sieve, db, qm);
    let mut expect = vdb.run_query(q).expect("oracle execute").rows;
    expect.sort();
    assert_eq!(got, expect, "enforcement bypass via {backend} for query {q:?}");
    got.len()
}

fn derived(q: SelectQuery, alias: &str) -> SelectQuery {
    SelectQuery {
        with: vec![],
        select: vec![SelectItem::Star],
        from: vec![TableRef {
            source: TableSource::Derived(Box::new(q)),
            alias: alias.into(),
            hint: IndexHint::None,
        }],
        predicate: None,
        group_by: vec![],
        limit: None,
    }
}

fn count_star(rel: &str) -> SelectQuery {
    SelectQuery {
        with: vec![],
        select: vec![SelectItem::Aggregate {
            func: AggFunc::Count,
            column: None,
            alias: Some("n".into()),
        }],
        from: vec![TableRef::named(rel)],
        predicate: None,
        group_by: vec![],
        limit: None,
    }
}

#[test]
fn derived_table_is_guarded() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        let q = derived(SelectQuery::star_from(REL), "d");
        let n = assert_enforced(backend, &mut sieve, db, &qm, &q);
        assert!(n > 0, "authorized querier must see rows");
        // And strictly fewer than the raw table (enforcement actually bit).
        assert!(n < db.table(REL).unwrap().table.len());
    });
}

#[test]
fn doubly_nested_derived_table_is_guarded() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        let q = derived(derived(SelectQuery::star_from(REL), "inner1"), "outer1");
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn with_body_is_guarded() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        let q = SelectQuery::star_from("v").with_clause("v", SelectQuery::star_from(REL));
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn scalar_subquery_is_guarded() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        // boards rows whose k is below the number of *visible* wifi rows:
        // the unguarded COUNT would see all 3000 rows and return every
        // board.
        let q = SelectQuery::star_from("boards").filter(Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::Column(ColumnRef::bare("k"))),
            rhs: Box::new(Expr::ScalarSubquery(Box::new(count_star(REL)))),
        });
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn scalar_subquery_in_protected_query_is_guarded() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        // Both the outer read and the aggregate feeding its predicate are
        // protected reads.
        let max_owner = SelectQuery {
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Max,
                column: Some(ColumnRef::bare("owner")),
                alias: Some("m".into()),
            }],
            ..SelectQuery::star_from(REL)
        };
        let q = SelectQuery::star_from(REL).filter(Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(Expr::Column(ColumnRef::bare("owner"))),
            rhs: Box::new(Expr::ScalarSubquery(Box::new(max_owner))),
        });
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn cte_shadowing_protected_name_resolves_to_cte() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        // The WITH body reads the protected base table (must be guarded);
        // the main body's `wifi_dataset` is the CTE, not a second base
        // read.
        let body = SelectQuery::star_from(REL).filter(Expr::col_eq(
            ColumnRef::bare("wifi_ap"),
            Value::Int(1001),
        ));
        let q = SelectQuery::star_from(REL).with_clause(REL, body);
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn cte_shadowing_without_protected_read_stays_untouched() {
    for_sieves(|backend, mut sieve, _db| {
        let qm = QueryMetadata::new(500, "Analytics");
        // A CTE named like the protected relation but reading only the
        // unprotected helper: nothing here is access-controlled, and
        // treating the CTE reference as the base table would be wrong in
        // both directions.
        let q =
            SelectQuery::star_from(REL).with_clause(REL, SelectQuery::star_from("boards"));
        let rows = sieve.execute(&q, &qm).unwrap().rows;
        assert_eq!(
            rows.len(),
            64,
            "CTE result replaced the protected name via {backend}"
        );
        assert_eq!(sieve.generations(), 0, "no guard generation for a CTE read");
    });
}

#[test]
fn with_clause_referencing_guarded_base_and_join() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        // The relation is read twice — once in a CTE body, once in the
        // main body — so the guard CTE is shared and no pushdown applies.
        let body = SelectQuery::star_from(REL).filter(Expr::col_eq(
            ColumnRef::bare("wifi_ap"),
            Value::Int(1001),
        ));
        let q = SelectQuery {
            with: vec![],
            select: vec![SelectItem::Star],
            from: vec![
                TableRef::aliased(REL, "w"),
                TableRef::aliased("v", "v"),
            ],
            predicate: Some(Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Box::new(Expr::Column(ColumnRef::qualified("w", "id"))),
                rhs: Box::new(Expr::Column(ColumnRef::qualified("v", "id"))),
            }),
            group_by: vec![],
            limit: None,
        }
        .with_clause("v", body);
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn nested_combination_with_derived_and_scalar_subquery() {
    for_sieves(|backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        // WITH a AS (SELECT * FROM (SELECT * FROM wifi)) SELECT * FROM a
        // WHERE owner <= (SELECT MAX(owner) FROM wifi)
        let max_owner = SelectQuery {
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Max,
                column: Some(ColumnRef::bare("owner")),
                alias: Some("m".into()),
            }],
            ..SelectQuery::star_from(REL)
        };
        let q = SelectQuery::star_from("a")
            .with_clause("a", derived(SelectQuery::star_from(REL), "z"))
            .filter(Expr::Cmp {
                op: CmpOp::Le,
                lhs: Box::new(Expr::Column(ColumnRef::bare("owner"))),
                rhs: Box::new(Expr::ScalarSubquery(Box::new(max_owner))),
            });
        assert!(assert_enforced(backend, &mut sieve, db, &qm, &q) > 0);
    });
}

#[test]
fn unauthorized_querier_sees_nothing_through_nesting() {
    for_sieves(|backend, mut sieve, _db| {
        let qm = QueryMetadata::new(999, "Analytics");
        for q in [
            derived(SelectQuery::star_from(REL), "d"),
            SelectQuery::star_from("v").with_clause("v", SelectQuery::star_from(REL)),
            SelectQuery::star_from(REL).with_clause(REL, SelectQuery::star_from(REL)),
        ] {
            assert!(
                sieve.execute(&q, &qm).unwrap().is_empty(),
                "unauthorized rows leaked through {q:?} via {backend}"
            );
        }
        // The scalar-subquery COUNT must observe zero visible rows.
        let q = SelectQuery::star_from("boards").filter(Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::Column(ColumnRef::bare("k"))),
            rhs: Box::new(Expr::ScalarSubquery(Box::new(count_star(REL)))),
        });
        assert!(sieve.execute(&q, &qm).unwrap().is_empty());
    });
}

#[test]
fn sql_text_round_trip_is_guarded() {
    for_sieves(|_backend, mut sieve, db| {
        let qm = QueryMetadata::new(500, "Analytics");
        let res = sieve
            .execute_sql(
                "SELECT COUNT(*) AS n FROM (SELECT * FROM wifi_dataset) d",
                &qm,
            )
            .unwrap();
        let n = res.rows[0][0].as_int().unwrap();
        let policies = sieve.policies();
        let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
            policies.iter(),
            REL,
            &qm,
            &sieve.groups(),
        );
        let expect = visible_rows(db, REL, &relevant).unwrap().len() as i64;
        assert_eq!(n, expect);
        assert!(n > 0);
    });
}

/// Deny semantics on every backend: deny policies factored into the allow
/// set (paper Section 3.1) must enforce `allow ∧ ¬deny` — checked against
/// a manual oracle computed straight from the raw rows, so `factor_deny`,
/// the rewriter, and (on `wire-sql`) render/parse fidelity are all on the
/// hook. One deny carries Time literals; the other's literals are
/// `Double`s over a Double column, whose fractional and integral-valued
/// bounds must both survive the wire typed.
#[test]
fn deny_policies_are_enforced_on_every_backend() {
    use sieve::core::deny::factor_deny;
    const OFFICE_LO: u32 = 32_400; // 09:00
    const OFFICE_HI: u32 = 57_600; // 16:00
    const SIG_LO: f64 = -10.0; // integral-valued Double: the old render
    const SIG_HI: f64 = 5.5; //   emitted "-10", silently retyping it
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
            ("signal", DataType::Double),
        ],
    ))
    .unwrap();
    for i in 0..2000i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 40),
                Value::Int(1000 + i % 10),
                Value::Time(((i * 53) % 86400) as u32),
                Value::Double((i % 89) as f64 * 0.5 - 20.0),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time", "signal"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();

    // Owners 0..20 allow querier 500 at AP 1001; owner 1 additionally
    // denies office hours, owner 11 denies a signal band. (With ap =
    // 1000 + i%10 and owner = i%40, the owners holding AP-1001 rows are
    // exactly {1, 11, 21, 31} — the denies must target owners that have
    // rows to deny.)
    let allow_for = |owner: i64| {
        Policy::new(
            owner,
            REL,
            QuerierSpec::User(500),
            "Analytics",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(1001)),
            )],
        )
    };
    let mut policies: Vec<Policy> = Vec::new();
    for owner in 0..20i64 {
        match owner {
            1 => policies.extend(
                factor_deny(
                    &allow_for(1),
                    &[ObjectCondition::new(
                        "ts_time",
                        CondPredicate::between(Value::Time(OFFICE_LO), Value::Time(OFFICE_HI)),
                    )],
                )
                .unwrap(),
            ),
            11 => policies.extend(
                factor_deny(
                    &allow_for(11),
                    &[ObjectCondition::new(
                        "signal",
                        CondPredicate::between(Value::Double(SIG_LO), Value::Double(SIG_HI)),
                    )],
                )
                .unwrap(),
            ),
            _ => policies.push(allow_for(owner)),
        }
    }

    // Manual oracle straight from the raw rows: allow ∧ ¬deny.
    let mut expect: Vec<Row> = db
        .table(REL)
        .unwrap()
        .table
        .rows()
        .iter()
        .filter(|r| {
            let owner = r[1].as_int().unwrap();
            let ap = r[2].as_int().unwrap();
            let ts = match r[3] {
                Value::Time(t) => t,
                _ => unreachable!(),
            };
            let sig = match r[4] {
                Value::Double(s) => s,
                _ => unreachable!(),
            };
            (0..20).contains(&owner)
                && ap == 1001
                && !(owner == 1 && (OFFICE_LO..=OFFICE_HI).contains(&ts))
                && !(owner == 11 && (SIG_LO..=SIG_HI).contains(&sig))
        })
        .cloned()
        .collect();
    expect.sort();
    let allow_only = db
        .table(REL)
        .unwrap()
        .table
        .rows()
        .iter()
        .filter(|r| (0..20).contains(&r[1].as_int().unwrap()) && r[2] == Value::Int(1001))
        .count();
    assert!(!expect.is_empty(), "some rows must survive the denies");
    assert!(expect.len() < allow_only, "the denies must remove rows");
    for owner in [1i64, 11] {
        let kept = expect.iter().filter(|r| r[1] == Value::Int(owner)).count();
        let had = db
            .table(REL)
            .unwrap()
            .table
            .rows()
            .iter()
            .filter(|r| r[1] == Value::Int(owner) && r[2] == Value::Int(1001))
            .count();
        assert!(kept > 0, "owner {owner}'s deny must not swallow the allow");
        assert!(kept < had, "owner {owner}'s deny must remove rows");
    }

    let qm = QueryMetadata::new(500, "Analytics");
    let mut backends = 0;
    for_each_backend(&db, &SieveOptions::default(), |name, mut sieve| {
        backends += 1;
        for p in &policies {
            sieve.add_policy(p.clone()).unwrap();
        }
        // Top-level read and a nested read must both enforce the denies.
        for q in [
            SelectQuery::star_from(REL),
            derived(SelectQuery::star_from(REL), "d"),
        ] {
            let mut got = sieve.execute(&q, &qm).expect("sieve execute").rows;
            got.sort();
            assert_eq!(got, expect, "deny bypass via {name} for query {q:?}");
        }
    });
    assert_eq!(backends, if cfg!(feature = "wire-sql") { 2 } else { 1 });
}

#[test]
fn baselines_fail_closed_on_nested_reads() {
    for_sieves(|backend, mut sieve, _db| {
        let qm = QueryMetadata::new(500, "Analytics");
        let nested = derived(SelectQuery::star_from(REL), "d");
        // A relation read BOTH top-level and nested: the top-level filter
        // would attach, but the scalar-subquery COUNT would still read
        // every base row — the overlap must refuse too, not slip past the
        // gate.
        let overlap = SelectQuery::star_from(REL).filter(Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::Column(ColumnRef::bare("id"))),
            rhs: Box::new(Expr::ScalarSubquery(Box::new(count_star(REL)))),
        });
        for q in [&nested, &overlap] {
            for b in [Baseline::P, Baseline::I, Baseline::U] {
                let err = sieve.prepare(Enforcement::Baseline(b), q, &qm);
                assert!(
                    err.is_err(),
                    "baseline {b:?} via {backend} must refuse nested protected \
                     reads, not bypass them"
                );
            }
        }
        // Top-level reads still work (including under a CTE that shadows
        // the protected name with an unprotected body... which is a
        // nested-scope question the baselines never see).
        let top = SelectQuery::star_from(REL);
        for b in [Baseline::P, Baseline::I, Baseline::U] {
            assert!(sieve.prepare(Enforcement::Baseline(b), &top, &qm).is_ok());
        }
    });
}

/// Random nesting: wrap the protected scan in 0..4 layers of derived
/// tables / fresh CTEs / shadowing CTEs, optionally adding a correlated-
/// free scalar-subquery predicate, and check the visible-database oracle
/// on every backend.
#[derive(Debug, Clone)]
struct Nesting {
    wraps: Vec<u8>,
    scalar_pred: bool,
    ap_filter: bool,
}

fn arb_nesting() -> impl Strategy<Value = Nesting> {
    (
        proptest::collection::vec(0u8..3, 0..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(wraps, scalar_pred, ap_filter)| Nesting {
            wraps,
            scalar_pred,
            ap_filter,
        })
}

fn build_nested(n: &Nesting) -> SelectQuery {
    let mut q = SelectQuery::star_from(REL);
    if n.ap_filter {
        q = q.filter(Expr::col_eq(ColumnRef::bare("wifi_ap"), Value::Int(1001)));
    }
    for (i, w) in n.wraps.iter().enumerate() {
        q = match w {
            0 => derived(q, &format!("d{i}")),
            1 => SelectQuery::star_from(format!("v{i}"))
                .with_clause(format!("v{i}"), q),
            _ => SelectQuery::star_from(REL).with_clause(REL, q),
        };
    }
    if n.scalar_pred {
        let max_owner = SelectQuery {
            select: vec![SelectItem::Aggregate {
                func: AggFunc::Max,
                column: Some(ColumnRef::bare("owner")),
                alias: Some("m".into()),
            }],
            ..SelectQuery::star_from(REL)
        };
        q = q.and_filter(Expr::Cmp {
            op: CmpOp::Le,
            lhs: Box::new(Expr::Column(ColumnRef::bare("owner"))),
            rhs: Box::new(Expr::ScalarSubquery(Box::new(max_owner))),
        });
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_nesting_matches_visible_oracle(
        nesting in arb_nesting(),
        authorized in any::<bool>(),
    ) {
        let qm = QueryMetadata::new(if authorized { 500 } else { 901 }, "Analytics");
        let q = build_nested(&nesting);
        let mut per_backend: Vec<Vec<Row>> = Vec::new();
        for_sieves(|name, mut sieve, db| {
            let mut got = sieve.execute(&q, &qm).expect("sieve execute").rows;
            got.sort();
            let vdb = visible_database(&sieve, db, &qm);
            let mut expect = vdb.run_query(&q).expect("oracle execute").rows;
            expect.sort();
            assert_eq!(&got, &expect, "nesting {nesting:?} via backend {name}");
            if !authorized {
                let leaked: Vec<&Row> = got
                    .iter()
                    .filter(|r| r.len() == 4) // wifi-shaped rows
                    .collect();
                assert!(leaked.is_empty(), "unauthorized querier saw rows via {name}");
            }
            per_backend.push(got);
        });
        for pair in per_backend.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "backends disagree on {:?}", nesting);
        }
    }
}
