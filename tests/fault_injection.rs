//! Fail-closed fault tolerance under injected backend failures.
//!
//! The contract under test, across both engines and any seeded fault
//! schedule:
//!
//! 1. **Fail closed** — a faulted call surfaces a typed [`SieveError`];
//!    it never returns the raw (un-rewritten) query's rows and never a
//!    partial row set. Every `Ok` is row-identical to the single-threaded
//!    no-fault oracle.
//! 2. **Typed recovery** — retryable faults are absorbed by the service's
//!    retry loop; lost server-side statements re-prepare exactly once per
//!    loss (no re-prepare storm), with the recovery visible in
//!    `recovery_stats()`.
//! 3. **No leaks** — after the chaos stops, vended statements and ∆
//!    partitions return to baseline.

use sieve::core::backend::{
    Fault, FaultConfig, FaultInjectingBackend, MinidbBackend, SqlBackend,
};
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::visible_rows;
use sieve::core::{BackendError, Sieve, SieveError, SieveOptions, SieveService};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, TableSchema, Value};
use std::sync::Arc;

const REL: &str = "wifi_dataset";
const QUERIERS: [i64; 4] = [500, 501, 502, 503];

fn policy(owner: i64, querier: i64, purpose: &str, ap: i64) -> Policy {
    Policy::new(
        owner,
        REL,
        QuerierSpec::User(querier),
        purpose,
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(ap)),
        )],
    )
}

fn loaded_db() -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..2000i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 80),
                Value::Int(1000 + i % 10),
                Value::Time(((i * 53) % 86400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

/// Querier 500+k reads owners 0..20 at AP 1001+k.
fn register_corpus(add: &mut dyn FnMut(Policy)) {
    for (k, &querier) in QUERIERS.iter().enumerate() {
        for owner in 0..20i64 {
            add(policy(owner, querier, "Analytics", 1001 + k as i64));
        }
    }
}

fn faulty_service<B: SqlBackend>(
    inner: B,
    config: FaultConfig,
) -> SieveService<FaultInjectingBackend<B>> {
    let mut sieve = Sieve::with_backend(
        FaultInjectingBackend::new(inner, config),
        SieveOptions::default(),
    )
    .unwrap();
    register_corpus(&mut |p| {
        sieve.add_policy(p).unwrap();
    });
    sieve.into_service()
}

/// Single-threaded visible-rows oracle for a querier, computed with
/// injection disabled.
fn oracle_for<B: SqlBackend>(
    service: &SieveService<FaultInjectingBackend<B>>,
    qm: &QueryMetadata,
) -> Vec<Row> {
    service.backend().set_enabled(false);
    let policies = service.policies();
    let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
        policies.iter(),
        REL,
        qm,
        &service.groups(),
    );
    let mut rows = visible_rows(&*service.backend(), REL, &relevant).unwrap();
    rows.sort();
    service.backend().set_enabled(true);
    rows
}

fn sorted_rows(res: sieve::minidb::QueryResult) -> Vec<Row> {
    let mut rows = res.rows;
    rows.sort();
    rows
}

// ---------------------------------------------------------------------
// Typed-error and recovery-path unit tests
// ---------------------------------------------------------------------

/// A scripted connection drop is absorbed by the retry loop: the query
/// still returns the oracle rows, the reconnect is counted, and the
/// backend epoch moves so prepared plans re-prepare.
#[test]
fn connection_drop_is_retried_and_bumps_epoch() {
    let service = faulty_service(MinidbBackend::new(loaded_db()), FaultConfig::default());
    let qm = QueryMetadata::new(500, "Analytics");
    let expect = oracle_for(&service, &qm);
    let q = SelectQuery::star_from(REL);
    assert_eq!(sorted_rows(service.execute(&q, &qm).unwrap()), expect);

    let epoch = service.backend_epoch();
    service.backend().script([Fault::ConnectionDrop]);
    let rows = sorted_rows(service.execute(&q, &qm).unwrap());
    assert_eq!(rows, expect, "retried query must still match the oracle");
    let stats = service.recovery_stats();
    assert_eq!(stats.reconnects, 1);
    assert!(stats.retries >= 1);
    assert_eq!(stats.exhausted, 0);
    assert!(
        service.backend_epoch() > epoch,
        "a lost connection must bump the backend epoch"
    );
}

/// A transient streak longer than the retry budget fails closed with
/// `RetriesExhausted` carrying the attempt count and last error.
#[test]
fn transient_storm_exhausts_retries() {
    let service = faulty_service(MinidbBackend::new(loaded_db()), FaultConfig::default());
    let qm = QueryMetadata::new(500, "Analytics");
    let q = SelectQuery::star_from(REL);
    service.execute(&q, &qm).unwrap(); // warm: guards generated fault-free

    // Default policy is 3 retries ⇒ 4 attempts; script one transient per
    // attempt so every one fails.
    service
        .backend()
        .script([Fault::Transient, Fault::Transient, Fault::Transient, Fault::Transient]);
    match service.execute(&q, &qm) {
        Err(SieveError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 4);
            assert!(matches!(last, BackendError::Transient(_)));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(service.recovery_stats().exhausted, 1);
    // The streak over, the same query succeeds again.
    let expect = oracle_for(&service, &qm);
    assert_eq!(sorted_rows(service.execute(&q, &qm).unwrap()), expect);
}

/// A shorter transient streak is absorbed entirely.
#[test]
fn short_transient_streak_is_absorbed() {
    let service = faulty_service(MinidbBackend::new(loaded_db()), FaultConfig::default());
    let qm = QueryMetadata::new(500, "Analytics");
    let expect = oracle_for(&service, &qm);
    let q = SelectQuery::star_from(REL);
    service.execute(&q, &qm).unwrap();

    service.backend().script([Fault::Transient, Fault::Transient]);
    assert_eq!(sorted_rows(service.execute(&q, &qm).unwrap()), expect);
    let stats = service.recovery_stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.exhausted, 0);
}

/// Timeouts are a spent budget, not a hiccup: surfaced immediately as
/// `Backend(Timeout)`, never retried.
#[test]
fn timeout_is_not_retried() {
    let service = faulty_service(MinidbBackend::new(loaded_db()), FaultConfig::default());
    let qm = QueryMetadata::new(500, "Analytics");
    let q = SelectQuery::star_from(REL);
    service.execute(&q, &qm).unwrap();

    service.backend().script([Fault::Timeout]);
    match service.execute(&q, &qm) {
        Err(SieveError::Backend(BackendError::Timeout)) => {}
        other => panic!("expected Backend(Timeout), got {other:?}"),
    }
    let stats = service.recovery_stats();
    assert_eq!(stats.retries, 0, "a timeout must not be retried");
    assert_eq!(stats.exhausted, 0);
}

/// A failed rewrite (here: a protected relation the engine doesn't have)
/// fails closed with a typed error — the raw query is never dispatched.
#[test]
fn rewrite_failure_fails_closed() {
    let service = faulty_service(MinidbBackend::new(loaded_db()), FaultConfig::default());
    service.protect("shadow_records");
    let qm = QueryMetadata::new(500, "Analytics");
    let calls_before = service.backend().injectable_calls();
    let err = service
        .execute(&SelectQuery::star_from("shadow_records"), &qm)
        .unwrap_err();
    assert!(
        err.backend_error().is_some() || matches!(err, SieveError::Rewrite(_)),
        "unexpected error shape: {err:?}"
    );
    assert_eq!(
        service.backend().injectable_calls(),
        calls_before,
        "a failed rewrite must never reach the dispatch path"
    );
}

/// A catalog fault mid-`prepare_batch` fails the whole batch closed; the
/// next batch succeeds and serves oracle-exact rows.
#[test]
fn prepare_batch_fails_closed_mid_batch() {
    let config = FaultConfig {
        fault_catalog: true,
        ..FaultConfig::default()
    };
    let service = faulty_service(MinidbBackend::new(loaded_db()), config);
    let q = SelectQuery::star_from(REL);
    let requests: Vec<(QueryMetadata, SelectQuery)> = QUERIERS
        .iter()
        .map(|&u| (QueryMetadata::new(u, "Analytics"), q.clone()))
        .collect();

    service.backend().script([Fault::Transient]);
    // Catalog reads feed guard generation and are deliberately not
    // retried: the batch surfaces the typed error.
    let err = service.prepare_batch(&requests).unwrap_err();
    assert!(matches!(
        err,
        SieveError::Backend(BackendError::Transient(_))
    ));

    // Script drained — the batch heals and enforcement is exact.
    service.prepare_batch(&requests).unwrap();
    for (qm, query) in &requests {
        let expect = oracle_for(&service, qm);
        assert_eq!(sorted_rows(service.execute(query, qm).unwrap()), expect);
    }
}

// ---------------------------------------------------------------------
// Statement-loss recovery (wire backend)
// ---------------------------------------------------------------------

/// Server-side statement eviction surfaces as `UnknownStatement` and the
/// `Prepared` handle re-prepares exactly once — also under a thread
/// storm, where every thread observed the same dead plan (single-flight).
#[cfg(feature = "wire-sql")]
#[test]
fn evicted_statement_reprepares_exactly_once() {
    use sieve::core::backend::WireSqlBackend;
    let service = faulty_service(WireSqlBackend::new(loaded_db()), FaultConfig::default());
    let session = service.session(QueryMetadata::new(500, "Analytics"));
    let expect = oracle_for(&service, session.metadata());
    let prepared = session.prepare(SelectQuery::star_from(REL)).unwrap();
    let id0 = prepared
        .statement_id()
        .expect("wire backend must prepare a server-side statement");
    assert_eq!(sorted_rows(prepared.execute().unwrap()), expect);

    // Evict the statement behind the session's back, as a server restart
    // or DISCARD ALL would.
    service.backend().close_prepared(id0);
    let prepares_before = service.backend().inner().prepares();

    std::thread::scope(|s| {
        let prepared = &prepared;
        let expect = &expect;
        for _ in 0..4 {
            s.spawn(move || {
                for _ in 0..5 {
                    assert_eq!(&sorted_rows(prepared.execute().unwrap()), expect);
                }
            });
        }
    });
    assert_eq!(
        prepared.reprepares(),
        1,
        "one eviction must cause exactly one re-prepare, storm or not"
    );
    assert_eq!(
        service.backend().inner().prepares(),
        prepares_before + 1,
        "the server must have seen exactly one fresh Parse"
    );
    assert_ne!(prepared.statement_id().unwrap(), id0);
    assert_eq!(service.recovery_stats().reprepares, 1);
}

/// A connection drop wipes the whole statement registry; the prepared
/// handle recovers through the epoch bump and the statement count returns
/// to exactly one.
#[cfg(feature = "wire-sql")]
#[test]
fn connection_drop_recovers_prepared_statements() {
    use sieve::core::backend::WireSqlBackend;
    let service = faulty_service(WireSqlBackend::new(loaded_db()), FaultConfig::default());
    let session = service.session(QueryMetadata::new(501, "Analytics"));
    let expect = oracle_for(&service, session.metadata());
    let prepared = session.prepare(SelectQuery::star_from(REL)).unwrap();
    assert_eq!(service.backend().inner().open_statements(), 1);

    // The drop fires on the next dispatch; the retry reaches the engine,
    // whose registry no longer knows the id, so the typed
    // UnknownStatement drives a re-prepare.
    service.backend().script([Fault::ConnectionDrop]);
    assert_eq!(sorted_rows(prepared.execute().unwrap()), expect);
    assert_eq!(prepared.reprepares(), 1);
    assert_eq!(
        service.backend().inner().open_statements(),
        1,
        "recovery must leave exactly the one live statement"
    );
    let stats = service.recovery_stats();
    assert_eq!(stats.reconnects, 1);
    assert_eq!(stats.reprepares, 1);

    drop(prepared);
    assert_eq!(service.backend().inner().open_statements(), 0);
    assert_eq!(service.backend().vended_statements(), 0);
}

// ---------------------------------------------------------------------
// Chaos hammer
// ---------------------------------------------------------------------

/// Seeds for the deterministic chaos schedules; override with
/// `SIEVE_FAULT_SEED=<n>` to replay a specific schedule.
fn chaos_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("SIEVE_FAULT_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return vec![seed];
        }
    }
    vec![1, 7, 42, 1337]
}

/// Threads × sessions × prepared statements against a backend that
/// faults ~30% of dispatches: every `Ok` must be row-identical to the
/// no-fault oracle, every `Err` must be a typed `SieveError`, and after
/// the faults stop the service must heal completely and leak nothing.
fn chaos_hammer<B: SqlBackend>(service: SieveService<FaultInjectingBackend<B>>, label: &str) {
    let oracles: Vec<(QueryMetadata, Vec<Row>)> = QUERIERS
        .iter()
        .map(|&u| {
            let qm = QueryMetadata::new(u, "Analytics");
            let rows = oracle_for(&service, &qm);
            assert!(!rows.is_empty(), "oracle empty for querier {u}");
            (qm, rows)
        })
        .collect();
    let q = SelectQuery::star_from(REL);

    std::thread::scope(|s| {
        for (qm, expect) in &oracles {
            let service = service.clone();
            let q = &q;
            s.spawn(move || {
                let session = service.session(qm.clone());
                // Preparing itself may fault; it must either fail typed
                // or produce a working handle.
                let mut prepared = None;
                for _ in 0..100 {
                    match session.prepare(q.clone()) {
                        Ok(p) => {
                            prepared = Some(Arc::new(p));
                            break;
                        }
                        Err(_) => continue,
                    }
                }
                let prepared = prepared.expect("prepare never survived 100 attempts");
                for i in 0..40 {
                    let res = if i % 2 == 0 {
                        session.execute(q)
                    } else {
                        prepared.execute()
                    };
                    // Errors are fine (fail-closed: typed error, zero
                    // rows) — but every Ok must match the oracle.
                    if let Ok(r) = res {
                        let rows = sorted_rows(r);
                        assert_eq!(
                            &rows, expect,
                            "{label}: querier {} iter {i} returned wrong rows \
                             under faults",
                            qm.querier
                        );
                    }
                }
            });
        }
    });

    let counts = service.backend().fault_counts();
    assert!(
        counts.total() > 0,
        "{label}: schedule injected no faults — the hammer tested nothing"
    );

    // Recovery phase: faults off, everything must heal.
    service.backend().set_enabled(false);
    for (qm, expect) in &oracles {
        let rows = sorted_rows(service.execute(&q, qm).unwrap());
        assert_eq!(&rows, expect, "{label}: post-chaos result diverged");
    }
    // Prepared handles dropped with their threads: no statement leaked.
    assert_eq!(
        service.backend().vended_statements(),
        0,
        "{label}: statements leaked through the chaos"
    );
    // And the ∆ registry drains once the cache lets go.
    service.invalidate_all();
    assert_eq!(service.delta_len(), 0, "{label}: ∆ partitions leaked");
}

#[test]
fn chaos_hammer_minidb_backend() {
    for seed in chaos_seeds() {
        let config = FaultConfig::seeded(seed, 0.3);
        let service = faulty_service(MinidbBackend::new(loaded_db()), config);
        chaos_hammer(service, &format!("minidb/seed {seed}"));
    }
}

#[cfg(feature = "wire-sql")]
#[test]
fn chaos_hammer_wire_backend() {
    use sieve::core::backend::WireSqlBackend;
    for seed in chaos_seeds() {
        let config = FaultConfig::seeded(seed, 0.3);
        let service = faulty_service(WireSqlBackend::new(loaded_db()), config);
        chaos_hammer(service, &format!("wire/seed {seed}"));
    }
}

// ---------------------------------------------------------------------
// Property: fail-closed soundness over random fault schedules
// ---------------------------------------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For ANY seed and fault rate: no fault sequence can make an
        /// `Ok` result diverge from the visible-rows oracle, and once the
        /// faults stop the counters return to baseline.
        #[test]
        fn no_fault_schedule_breaks_soundness(
            seed in any::<u64>(),
            rate_pct in 0u32..60,
            ops in 10usize..40,
        ) {
            let rate = f64::from(rate_pct) / 100.0;
            let config = FaultConfig::seeded(seed, rate);
            let service = faulty_service(MinidbBackend::new(loaded_db()), config);
            let qm = QueryMetadata::new(500, "Analytics");
            let expect = oracle_for(&service, &qm);
            let q = SelectQuery::star_from(REL);
            let session = service.session(qm.clone());
            let mut prepared = None;
            for i in 0..ops {
                let res = match i % 3 {
                    0 => service.execute(&q, &qm),
                    1 => session.execute(&q),
                    _ => {
                        if prepared.is_none() {
                            prepared = session.prepare(q.clone()).ok();
                        }
                        match &prepared {
                            Some(p) => p.execute(),
                            None => continue,
                        }
                    }
                };
                if let Ok(r) = res {
                    prop_assert_eq!(
                        sorted_rows(r),
                        expect.clone(),
                        "Ok result diverged from oracle under seed {} rate {}",
                        seed,
                        rate
                    );
                }
            }
            // Faults off: the service heals...
            service.backend().set_enabled(false);
            prop_assert_eq!(sorted_rows(service.execute(&q, &qm).unwrap()), expect);
            // ...and nothing leaked.
            drop(prepared);
            prop_assert_eq!(service.backend().vended_statements(), 0);
            service.invalidate_all();
            prop_assert_eq!(service.delta_len(), 0);
        }
    }
}
