//! Guard-cache correctness: warm queries must be *exactly* as correct as
//! cold ones, across invalidation, regeneration policies, ∆ partition
//! reclamation, and option flips.
//!
//! The cache under test (sieve_core::cache::GuardCache) stores both the
//! generated guarded expression and its compiled rewrite fragment per
//! (querier, purpose, relation); `add_policy` invalidates precisely the
//! affected keys, and stale entries regenerate lazily per the configured
//! RegenerationPolicy.

use sieve::core::dynamic::RegenerationPolicy;
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::rewrite::DeltaMode;
use sieve::core::semantics::visible_rows;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, TableSchema, Value};

const REL: &str = "wifi_dataset";

fn policy(owner: i64, querier: i64, purpose: &str, ap: i64) -> Policy {
    Policy::new(
        owner,
        REL,
        QuerierSpec::User(querier),
        purpose,
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(ap)),
        )],
    )
}

fn loaded_sieve() -> Sieve {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..4000i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 80),
                Value::Int(1000 + i % 10),
                Value::Time(((i * 53) % 86400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    for owner in 0..20i64 {
        sieve.add_policy(policy(owner, 500, "Analytics", 1001)).unwrap();
    }
    // A second querier and a second purpose, to check invalidation scope.
    for owner in 0..10i64 {
        sieve.add_policy(policy(owner, 501, "Analytics", 1002)).unwrap();
        sieve.add_policy(policy(owner, 500, "Safety", 1003)).unwrap();
    }
    sieve
}

fn oracle(sieve: &Sieve, qm: &QueryMetadata) -> Vec<Row> {
    let policies = sieve.policies();
    let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
        policies.iter(),
        REL,
        qm,
        &sieve.groups(),
    );
    let mut rows = visible_rows(&*sieve.db(), REL, &relevant).unwrap();
    rows.sort();
    rows
}

fn run_sorted(sieve: &mut Sieve, qm: &QueryMetadata) -> Vec<Row> {
    let q = SelectQuery::star_from(REL);
    let mut rows = sieve.execute(&q, qm).unwrap().rows;
    rows.sort();
    rows
}

#[test]
fn warm_queries_hit_both_cache_levels() {
    let mut sieve = loaded_sieve();
    let qm = QueryMetadata::new(500, "Analytics");
    run_sorted(&mut sieve, &qm);
    let s0 = sieve.cache_stats();
    assert_eq!(s0.misses, 1);
    assert_eq!(s0.fragment_builds, 1);
    for _ in 0..5 {
        run_sorted(&mut sieve, &qm);
    }
    let s1 = sieve.cache_stats();
    assert_eq!(s1.misses, 1, "warm queries must not regenerate");
    assert_eq!(s1.fragment_builds, 1, "warm queries must not recompile");
    assert_eq!(s1.hits, s0.hits + 5);
    assert_eq!(s1.fragment_hits, s0.fragment_hits + 5);
    assert_eq!(sieve.generations(), 1);
}

#[test]
fn add_policy_invalidates_only_affected_key_and_matches_cold_and_oracle() {
    let mut sieve = loaded_sieve();
    let qm_a = QueryMetadata::new(500, "Analytics");
    let qm_b = QueryMetadata::new(501, "Analytics");
    let qm_c = QueryMetadata::new(500, "Safety");
    run_sorted(&mut sieve, &qm_a);
    run_sorted(&mut sieve, &qm_b);
    run_sorted(&mut sieve, &qm_c);
    assert_eq!(sieve.cache_stats().misses, 3);

    // New policy for querier 500 / Analytics only (owner 71 ⇒ i%10 == 1 ⇒
    // rows at AP 1001 exist).
    sieve.add_policy(policy(71, 500, "Analytics", 1001)).unwrap();

    // Unaffected keys stay cached.
    let misses_before = sieve.cache_stats().misses;
    run_sorted(&mut sieve, &qm_b);
    run_sorted(&mut sieve, &qm_c);
    assert_eq!(
        sieve.cache_stats().misses,
        misses_before,
        "other queriers/purposes must keep their cache entries"
    );

    // The affected key regenerates and matches both a cold-cache run and
    // the visible_rows oracle. Replacing an outdated entry is counted as a
    // regeneration, not a miss (the entry existed).
    let regens_before = sieve.cache_stats().regenerations;
    let warm_after_invalidation = run_sorted(&mut sieve, &qm_a);
    assert_eq!(sieve.cache_stats().misses, misses_before);
    assert_eq!(sieve.cache_stats().regenerations, regens_before + 1);
    let expect = oracle(&sieve, &qm_a);
    assert_eq!(warm_after_invalidation, expect);
    assert!(warm_after_invalidation
        .iter()
        .any(|r| r[1] == Value::Int(71)));

    sieve.invalidate_all();
    let cold = run_sorted(&mut sieve, &qm_a);
    assert_eq!(cold, warm_after_invalidation, "cold == warm after regen");
}

#[test]
fn manual_regeneration_serves_pending_from_cache_and_matches_oracle() {
    let mut sieve = loaded_sieve();
    sieve.options_mut().regeneration = RegenerationPolicy::Manual;
    let qm = QueryMetadata::new(500, "Analytics");
    let n0 = run_sorted(&mut sieve, &qm).len();
    let gens = sieve.generations();

    sieve.add_policy(policy(61, 500, "Analytics", 1001)).unwrap();
    // No regeneration under Manual, but the pending policy is enforced via
    // a rebuilt effective expression + fragment.
    let rows = run_sorted(&mut sieve, &qm);
    assert_eq!(sieve.generations(), gens);
    assert!(rows.len() > n0);
    assert_eq!(rows, oracle(&sieve, &qm));

    // The pending-augmented fragment is itself cached across repeats.
    let builds = sieve.cache_stats().fragment_builds;
    run_sorted(&mut sieve, &qm);
    run_sorted(&mut sieve, &qm);
    assert_eq!(sieve.cache_stats().fragment_builds, builds);
}

#[test]
fn delta_partitions_do_not_leak_across_repeat_queries() {
    let mut sieve = loaded_sieve();
    // Force every partition through ∆ so fragments register partitions.
    sieve.options_mut().rewrite.delta_mode = DeltaMode::Always;
    let qm = QueryMetadata::new(500, "Analytics");
    let baseline_rows = run_sorted(&mut sieve, &qm);
    assert_eq!(baseline_rows, oracle(&sieve, &qm));
    let after_first = sieve.delta_len();
    for _ in 0..10 {
        run_sorted(&mut sieve, &qm);
    }
    assert_eq!(
        sieve.delta_len(),
        after_first,
        "repeat queries must reuse ∆ registrations, not accumulate them"
    );
    // Invalidation regenerates the fragment but frees the old partitions.
    sieve.add_policy(policy(62, 500, "Analytics", 1001)).unwrap();
    run_sorted(&mut sieve, &qm);
    assert_eq!(
        sieve.delta_len(),
        after_first,
        "regeneration must free superseded ∆ partitions"
    );
    // Full invalidation drops everything.
    sieve.invalidate_all();
    assert_eq!(sieve.delta_len(), 0);
}

#[test]
fn delta_mode_flip_recompiles_fragment_and_stays_correct() {
    let mut sieve = loaded_sieve();
    let qm = QueryMetadata::new(500, "Analytics");
    let inline_rows = run_sorted(&mut sieve, &qm);
    let builds = sieve.cache_stats().fragment_builds;
    sieve.options_mut().rewrite.delta_mode = DeltaMode::Always;
    let delta_rows = run_sorted(&mut sieve, &qm);
    assert_eq!(
        sieve.cache_stats().fragment_builds,
        builds + 1,
        "mode change must recompile the fragment"
    );
    assert_eq!(inline_rows, delta_rows);
    assert_eq!(delta_rows, oracle(&sieve, &qm));
    assert_eq!(sieve.generations(), 1, "mode change must not regenerate");
}

/// Ground-truth counter audit: drive a known sequence of queries and
/// policy insertions and check every counter against a hand-maintained
/// trace. Catches double-counted misses, regenerations booked as misses,
/// and generated-but-uncached skew: the invariants are
/// `lookups = hits + misses + regenerations` and
/// `Sieve::generations = misses + regenerations` — always.
#[test]
fn counters_match_ground_truth_trace() {
    let mut sieve = loaded_sieve();
    let qm_a = QueryMetadata::new(500, "Analytics");
    let qm_b = QueryMetadata::new(501, "Analytics");

    // Trace model (expression-level): expected (hits, misses, regens).
    let mut expect = (0u64, 0u64, 0u64);
    let check = |sieve: &Sieve, expect: &(u64, u64, u64), step: &str| {
        let s = sieve.cache_stats();
        assert_eq!((s.hits, s.misses, s.regenerations), *expect, "at {step}");
        assert_eq!(s.generations(), sieve.generations(), "generations at {step}");
        assert_eq!(s.lookups(), s.hits + s.misses + s.regenerations, "lookups at {step}");
    };

    run_sorted(&mut sieve, &qm_a); // cold → miss
    expect.1 += 1;
    check(&sieve, &expect, "cold A");

    run_sorted(&mut sieve, &qm_a); // warm → hit
    run_sorted(&mut sieve, &qm_a);
    expect.0 += 2;
    check(&sieve, &expect, "warm A x2");

    run_sorted(&mut sieve, &qm_b); // cold for B → miss
    expect.1 += 1;
    check(&sieve, &expect, "cold B");

    // Policy touching only A's key: A regenerates (entry existed), B stays
    // warm.
    sieve.add_policy(policy(72, 500, "Analytics", 1001)).unwrap();
    run_sorted(&mut sieve, &qm_a);
    expect.2 += 1;
    run_sorted(&mut sieve, &qm_b);
    expect.0 += 1;
    check(&sieve, &expect, "regen A, warm B");

    // invalidate_all drops entries: the next queries are misses again
    // (fresh generations, not regenerations).
    sieve.invalidate_all();
    run_sorted(&mut sieve, &qm_a);
    run_sorted(&mut sieve, &qm_b);
    expect.1 += 2;
    check(&sieve, &expect, "cold after clear");

    assert_eq!(sieve.cache_stats().invalidations, 1, "one key invalidated");
    assert_eq!(sieve.cache_stats().evictions, 0, "cap never tripped");
}

/// Batched preparation must book exactly one generation per key — no
/// double counting through the bulk-insert path — and the follow-up
/// per-query lookups are hits.
#[test]
fn batch_prepare_counters_match_trace() {
    let mut sieve = loaded_sieve();
    let q = SelectQuery::star_from(REL);
    let requests: Vec<(QueryMetadata, SelectQuery)> = [500i64, 501]
        .iter()
        .map(|&u| (QueryMetadata::new(u, "Analytics"), q.clone()))
        .collect();
    let report = sieve.prepare_batch(&requests).unwrap();
    assert_eq!(report.generated, 2);
    assert_eq!(report.reused, 0);
    let s = sieve.cache_stats();
    assert_eq!((s.hits, s.misses, s.regenerations), (0, 2, 0));
    assert_eq!(sieve.generations(), 2);

    // Re-preparing the same batch generates nothing.
    let report = sieve.prepare_batch(&requests).unwrap();
    assert_eq!(report.generated, 0);
    assert_eq!(report.reused, 2);
    assert_eq!(sieve.generations(), 2);

    // Executing the batch hits the warm cache.
    let results = sieve.execute_batch(&requests).unwrap();
    assert_eq!(results.len(), 2);
    let s = sieve.cache_stats();
    assert_eq!(s.misses, 2, "no extra generations at execute time");
    assert_eq!(s.hits, 2);
}

/// Eviction under the cap is LRU-on-*access*: a key that keeps getting
/// read survives churn of arbitrarily many one-shot keys (FIFO or
/// LRU-on-insert would rotate it out), while total occupancy stays
/// bounded and the shed work is visible in the eviction counter.
#[test]
fn guard_cache_churn_keeps_hot_keys_via_lru_on_access() {
    use sieve::core::cache::{GuardCache, GUARD_CACHE_CAP};
    use sieve::core::GuardedExpression;
    use std::sync::Arc;

    let cache = GuardCache::new();
    let entry = |q: i64| {
        (
            (q, "Any".to_string(), REL.to_string()),
            Arc::new(GuardedExpression {
                relation: REL.to_string(),
                querier: q,
                purpose: "Any".into(),
                guards: vec![],
            }),
        )
    };
    let (hot_key, hot_expr) = entry(-1);
    cache.insert_generated(hot_key.clone(), hot_expr, 0);
    for i in 0..(GUARD_CACHE_CAP as i64 * 4) {
        let (k, e) = entry(i);
        cache.insert_generated(k, e, 0);
        // The read IS the touch: this is what keeps the key alive.
        assert!(
            cache.read(&hot_key, |_| ()).is_some(),
            "hot key evicted by churn at insertion {i}"
        );
        assert!(cache.len() <= GUARD_CACHE_CAP, "cap breached at insertion {i}");
    }
    let s = cache.stats();
    assert_eq!(
        s.evictions as usize,
        (GUARD_CACHE_CAP * 4 + 1) - cache.len(),
        "every shed entry must be booked as an eviction"
    );
}

/// Evicting an entry whose fragment registered ∆ partitions must free
/// those partitions (via the RAII handles) — the registry cannot grow
/// with evicted keys.
#[test]
fn eviction_frees_delta_partitions_of_dropped_fragments() {
    let mut sieve = loaded_sieve();
    sieve.options_mut().rewrite.delta_mode = DeltaMode::Always;
    let qm = QueryMetadata::new(500, "Analytics");
    run_sorted(&mut sieve, &qm);
    assert!(sieve.delta_len() > 0, "∆ partitions registered");
    let live = sieve.delta_len();
    // Invalidation + regeneration replaces the fragment; the superseded
    // partitions must be gone once no query pins them.
    sieve.add_policy(policy(63, 500, "Analytics", 1001)).unwrap();
    run_sorted(&mut sieve, &qm);
    assert!(
        sieve.delta_len() <= live + 1,
        "superseded ∆ partitions leaked: {} -> {}",
        live,
        sieve.delta_len()
    );
    // Dropping every entry drops every partition.
    sieve.invalidate_all();
    assert_eq!(sieve.delta_len(), 0);
}

#[test]
fn repeated_sql_text_reuses_parsed_ast() {
    let mut sieve = loaded_sieve();
    let qm = QueryMetadata::new(500, "Analytics");
    let sql = "SELECT COUNT(*) AS n FROM wifi_dataset WHERE wifi_ap = 1001";
    let a = sieve.execute_sql(sql, &qm).unwrap();
    let b = sieve.execute_sql(sql, &qm).unwrap();
    assert_eq!(a, b);
    let n = a.rows[0][0].as_int().unwrap();
    assert_eq!(n, oracle(&sieve, &qm).len() as i64);
}
