//! Property tests over the static soundness verifier
//! (`sieve::core::analyze`), tying its symbolic verdicts back to the
//! engine's concrete semantics:
//!
//! 1. **Proven means sound**: for random policy sets, the generated
//!    guarded expression must never be `Refuted`, and whenever the
//!    verifier says `Proven`, executing the rewritten predicate through
//!    the engine returns only rows the reference oracle
//!    (`semantics::visible_rows`) allows.
//! 2. **Dead policies are dead**: removing every policy the
//!    `dead_policy` lint flags changes nothing about the visible row
//!    set.
//! 3. **Refuted means leak**: a seeded widening bug (a foreign policy
//!    id smuggled into a guard partition) is refuted with a witness
//!    that *replays* — inserted into the table, the witness row comes
//!    back from the widened predicate while the querier's real policies
//!    reject it.
//! 4. **The service enforces its own proofs**: with
//!    `SieveOptions::verify_rewrites` on, end-to-end enforcement still
//!    works and matches the oracle (generation is checked, not broken).
//! 5. **Audit determinism**: the same store audited twice renders
//!    byte-identical JSON.

use proptest::prelude::*;
use sieve::core::analyze::{self, AnalysisReport, CheckRecord, FindingKind, Verdict};
use sieve::core::cost::CostModel;
use sieve::core::guard::{generate_guarded_expression, GuardSelectionStrategy};
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, PolicyId, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::{eval_policies, visible_rows};
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, SelectQuery, TableSchema};
use std::collections::{BTreeSet, HashMap};

const REL: &str = "wifi_dataset";

fn test_db(rows: i64, owners: i64) -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % owners),
                Value::Int(1000 + i % 8),
                Value::Time(((i * 379) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

fn arb_condition() -> impl Strategy<Value = ObjectCondition> {
    prop_oneof![
        (1000i64..1008).prop_map(|ap| ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(ap))
        )),
        (0u32..20, 1u32..6).prop_map(|(start_h, len_h)| {
            let lo = start_h * 3600;
            let hi = ((start_h + len_h) * 3600).min(86_399);
            ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(lo), Value::Time(hi)),
            )
        }),
        proptest::collection::vec(1000i64..1008, 1..4).prop_map(|aps| ObjectCondition::new(
            "wifi_ap",
            CondPredicate::In(aps.into_iter().map(Value::Int).collect())
        )),
    ]
}

fn arb_policy(owners: i64) -> impl Strategy<Value = Policy> {
    (0..owners, proptest::collection::vec(arb_condition(), 0..3))
        .prop_map(|(owner, conds)| Policy::new(owner, REL, QuerierSpec::User(1), "Any", conds))
}

fn with_ids(mut policies: Vec<Policy>) -> Vec<Policy> {
    for (i, p) in policies.iter_mut().enumerate() {
        p.id = i as PolicyId + 1;
    }
    policies
}

fn generate(refs: &[&Policy], db: &Database) -> sieve::core::guard::GuardedExpression {
    let entry = db.table(REL).unwrap();
    generate_guarded_expression(
        refs,
        entry,
        &CostModel::default(),
        GuardSelectionStrategy::CostOptimal,
        1,
        "Any",
        REL,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // 1. Generation is never refuted, and a `Proven` verdict is backed by
    //    the engine: the rewritten predicate admits only oracle-visible
    //    rows.
    #[test]
    fn proven_guard_admits_only_visible_rows(
        policies in proptest::collection::vec(arb_policy(12), 1..30)
    ) {
        let db = test_db(1200, 12);
        let policies = with_ids(policies);
        let refs: Vec<&Policy> = policies.iter().collect();
        let ge = generate(&refs, &db);
        let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();

        let verdict = analyze::verify_guarded_expression(&ge, &by_id, &refs);
        prop_assert!(
            !verdict.is_refuted(),
            "correct generation refuted: {verdict}"
        );
        if verdict.is_proven() {
            let got = db
                .run_query(&SelectQuery::star_from(REL).filter(ge.to_expr(&by_id)))
                .unwrap()
                .rows;
            let visible: BTreeSet<Vec<Value>> =
                visible_rows(&db, REL, &refs).unwrap().into_iter().collect();
            for row in &got {
                prop_assert!(
                    visible.contains(row),
                    "proven guard leaked row {row:?}"
                );
            }
        }
    }

    // 2. Policies the dead-policy lint flags contribute nothing: removing
    //    them leaves the oracle-visible row set unchanged.
    #[test]
    fn dead_policy_removal_is_a_noop(
        policies in proptest::collection::vec(arb_policy(8), 1..25)
    ) {
        let db = test_db(800, 8);
        let policies = with_ids(policies);
        let refs: Vec<&Policy> = policies.iter().collect();
        let dead: BTreeSet<PolicyId> = analyze::lint_policies(&refs, REL, 64)
            .into_iter()
            .filter(|f| f.kind == FindingKind::DeadPolicy)
            .flat_map(|f| f.policies)
            .collect();
        let kept: Vec<&Policy> = refs.iter().copied().filter(|p| !dead.contains(&p.id)).collect();

        let full = visible_rows(&db, REL, &refs).unwrap();
        let pruned = visible_rows(&db, REL, &kept).unwrap();
        prop_assert_eq!(full, pruned, "removing dead policies changed visibility");
    }
}

// 3. A seeded widening bug — a foreign owner's policy id pushed into a
//    guard partition — is refuted, and its witness is a *real* leak:
//    inserted into the table it satisfies the widened predicate through
//    the engine while the querier's actual policies reject it.
#[test]
fn refuted_witness_replays_as_concrete_leak() {
    let mut db = test_db(800, 8);
    let mine = with_ids(vec![
        Policy::new(
            0,
            REL,
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(9 * 3600), Value::Time(17 * 3600)),
            )],
        ),
        Policy::new(
            0,
            REL,
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(1003)),
            )],
        ),
    ]);
    let refs: Vec<&Policy> = mine.iter().collect();
    let mut ge = generate(&refs, &db);

    // The widening bug: another querier's unconditional grant on the
    // same owner lands in the first guard's partition (same owner, so
    // the guard's owner condition cannot mask the widening).
    let mut foreign = Policy::new(0, REL, QuerierSpec::User(2), "Any", vec![]);
    foreign.id = 999;
    let mut by_id: HashMap<PolicyId, &Policy> = mine.iter().map(|p| (p.id, p)).collect();
    by_id.insert(foreign.id, &foreign);
    ge.guards[0].policies.push(foreign.id);

    let verdict = analyze::verify_guarded_expression(&ge, &by_id, &refs);
    let Verdict::Refuted { witness } = verdict else {
        panic!("seeded widening not refuted: {verdict}");
    };

    // Replay: materialise the witness as a stored row (absent columns are
    // NULL, exactly the verifier's model) and run the widened predicate
    // through the engine.
    let schema_cols = ["id", "owner", "wifi_ap", "ts_time"];
    let row: Vec<Value> = schema_cols
        .iter()
        .map(|c| witness.get(*c).cloned().unwrap_or(Value::Null))
        .collect();
    {
        let entry = db.table(REL).unwrap();
        assert!(
            !eval_policies(&refs, entry.schema(), &row, None).allowed,
            "witness row is allowed by the querier's policies — not a leak"
        );
    }
    db.insert(REL, row.clone()).unwrap();
    let leaked = db
        .run_query(&SelectQuery::star_from(REL).filter(ge.to_expr(&by_id)))
        .unwrap()
        .rows;
    assert!(
        leaked.contains(&row),
        "witness row did not replay through the widened predicate"
    );
}

// 4. `verify_rewrites` on the live service: enforcement still works end
//    to end (every generation is proven, none refused) and matches the
//    oracle.
#[test]
fn service_with_verification_matches_oracle() {
    let db = test_db(800, 8);
    let policies = vec![
        Policy::new(
            0,
            REL,
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(8 * 3600), Value::Time(18 * 3600)),
            )],
        ),
        Policy::new(1, REL, QuerierSpec::User(1), "Any", vec![]),
        Policy::new(
            2,
            REL,
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::In(vec![Value::Int(1001), Value::Int(1005)]),
            )],
        ),
    ];
    let mut sieve = Sieve::new(
        db,
        SieveOptions {
            verify_rewrites: true,
            ..Default::default()
        },
    )
    .unwrap();
    sieve.add_policies(policies).unwrap();

    let qm = QueryMetadata::new(1, "Any");
    let got = sieve.execute(&SelectQuery::star_from(REL), &qm).unwrap();

    let stored = sieve.policies();
    let refs: Vec<&Policy> = stored.iter().collect();
    let expect: BTreeSet<Vec<Value>> = visible_rows(&*sieve.db(), REL, &refs)
        .unwrap()
        .into_iter()
        .collect();
    let got: BTreeSet<Vec<Value>> = got.rows.into_iter().collect();
    assert_eq!(got, expect, "verified enforcement diverged from the oracle");
    assert!(!expect.is_empty(), "scenario must be non-trivial");
}

// 5. Auditing the same store twice renders byte-identical JSON.
#[test]
fn audit_report_is_deterministic() {
    fn run_audit() -> String {
        let db = test_db(600, 6);
        let mut policies = Vec::new();
        for owner in 0..6i64 {
            policies.push(Policy::new(
                owner,
                REL,
                QuerierSpec::User(1),
                "Any",
                vec![ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::Eq(Value::Int(1000 + owner)),
                )],
            ));
        }
        // One dead policy and one subsumed grant, so the findings arrays
        // are non-empty.
        policies.push(Policy::new(
            0,
            REL,
            QuerierSpec::User(1),
            "Any",
            vec![
                ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1000))),
                ObjectCondition::new("wifi_ap", CondPredicate::Eq(Value::Int(1001))),
            ],
        ));
        policies.push(Policy::new(
            1,
            REL,
            QuerierSpec::User(1),
            "Any",
            vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(10 * 3600), Value::Time(11 * 3600)),
            )],
        ));
        let policies = with_ids(policies);
        let refs: Vec<&Policy> = policies.iter().collect();
        let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();
        let ge = generate(&refs, &db);

        let mut report = AnalysisReport::new("proptest");
        report.findings.extend(analyze::lint_policies(&refs, REL, 32));
        report
            .findings
            .extend(analyze::lint_guarded_expression(&ge, &by_id));
        report.checks.push(CheckRecord {
            relation: REL.to_string(),
            querier: 1,
            purpose: "Any".to_string(),
            guards: ge.guards.len(),
            policies: refs.len(),
            verdict: analyze::verify_guarded_expression(&ge, &by_id, &refs),
        });
        report.sort();
        report.to_json()
    }

    let a = run_audit();
    let b = run_audit();
    assert_eq!(a, b, "audit is not deterministic");
    assert!(a.contains("\"dead_policy\""), "expected a dead-policy finding:\n{a}");
    assert!(a.contains("\"proven\": 1"), "expected the check to prove:\n{a}");
}
