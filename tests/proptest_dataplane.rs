//! Property tests for the parallel, index-aware data plane: whatever the
//! planner picks for a guard-shaped predicate — exact index unions, bitmap
//! ORs with residual filters, morsel-parallel scans, plain sequential
//! scans — the rows that come back are identical to the sequential
//! full-scan oracle. Coverage spans thread counts, index availability
//! (none / partial / full), stale histograms, NULL index keys, and both
//! execution backends (in-process and wire-SQL).

use proptest::prelude::*;
use sieve::core::backend::{MinidbBackend, SqlBackend};
#[cfg(feature = "wire-sql")]
use sieve::core::backend::WireSqlBackend;
use sieve::minidb::exec::ExecOptions;
use sieve::minidb::expr::{CmpOp, ColumnRef, Expr};
use sieve::minidb::plan::{IndexHint, TableRef};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, SelectQuery, TableSchema, PARALLEL_MIN_ROWS};

/// Which secondary indexes exist on the test table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Indexing {
    /// No indexes at all: every plan degrades to a scan.
    None,
    /// Only `a` is indexed: predicates on b/c force residual scans.
    Partial,
    /// a, b, and c all indexed (the guard-friendly layout).
    Full,
}

/// Build the table. Column `c` carries NULLs (every 13th row), so index
/// ranges with an unbounded low end include NULL keys — the case where
/// eliding the residual filter would be unsound.
fn build(rows: i64, profile: DbProfile, indexing: Indexing, stale_hist: bool) -> Database {
    let mut db = Database::new(profile);
    db.create_table(TableSchema::of(
        "t",
        &[
            ("id", DataType::Int),
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Time),
        ],
    ))
    .unwrap();
    let insert = |db: &mut Database, i: i64| {
        let c = if i % 13 == 0 {
            Value::Null
        } else {
            Value::Time(((i * 557) % 86_400) as u32)
        };
        db.insert("t", vec![Value::Int(i), Value::Int(i % 23), Value::Int(i % 7), c])
            .unwrap();
    };
    // Stale-histogram case: index + analyze at 60% of the data, then keep
    // inserting without re-analyzing. Estimates go stale; results must not.
    let analyze_at = if stale_hist { rows * 6 / 10 } else { rows };
    for i in 0..analyze_at {
        insert(&mut db, i);
    }
    let cols: &[&str] = match indexing {
        Indexing::None => &[],
        Indexing::Partial => &["a"],
        Indexing::Full => &["a", "b", "c"],
    };
    for col in cols {
        db.create_index("t", col).unwrap();
    }
    db.analyze("t").unwrap();
    for i in analyze_at..rows {
        insert(&mut db, i);
    }
    db
}

/// A guard-shaped predicate: a top-level OR whose disjuncts are small
/// conjunctions — exactly what `compile_guard_fragment` emits. Leaves
/// include NULL-sensitive shapes (`c <= lit` probes from the unbounded
/// low end; `a = NULL` probes a NULL key) to stress residual elision.
fn arb_guard_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..23).prop_map(|v| Expr::col_eq(ColumnRef::bare("a"), Value::Int(v))),
        (0i64..7).prop_map(|v| Expr::col_eq(ColumnRef::bare("b"), Value::Int(v))),
        (0i64..23, 0i64..23).prop_map(|(x, y)| Expr::InList {
            expr: Box::new(Expr::Column(ColumnRef::bare("a"))),
            list: vec![Expr::Literal(Value::Int(x)), Expr::Literal(Value::Int(y))],
            negated: false,
        }),
        (0u32..20, 1u32..8).prop_map(|(s, l)| Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("c"))),
            low: Box::new(Expr::Literal(Value::Time(s * 3600))),
            high: Box::new(Expr::Literal(Value::Time(((s + l) * 3600).min(86_399)))),
            negated: false,
        }),
        (1u32..24).prop_map(|h| Expr::col_cmp(
            ColumnRef::bare("c"),
            CmpOp::Le,
            Value::Time(h * 3600 - 1)
        )),
        Just(Expr::col_eq(ColumnRef::bare("a"), Value::Null)),
    ];
    proptest::collection::vec(
        proptest::collection::vec(leaf, 1..3).prop_map(Expr::all),
        1..5,
    )
    .prop_map(Expr::any)
}

fn scan_query(pred: &Expr) -> SelectQuery {
    SelectQuery {
        from: vec![TableRef::named("t").with_hint(IndexHint::IgnoreAll)],
        ..SelectQuery::star_from("t")
    }
    .filter(pred.clone())
}

fn forced_query(pred: &Expr) -> SelectQuery {
    SelectQuery {
        from: vec![TableRef::named("t").with_hint(IndexHint::Force(vec![
            "a".into(),
            "b".into(),
            "c".into(),
        ]))],
        ..SelectQuery::star_from("t")
    }
    .filter(pred.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Index unions and parallel scans are row-identical to the
    /// sequential full-scan oracle across plans × thread counts × index
    /// availability × histogram staleness, on both optimizer profiles.
    #[test]
    fn plans_and_threads_agree_with_scan_oracle(
        pred in arb_guard_pred(),
        rows in 1_000i64..2 * PARALLEL_MIN_ROWS as i64,
        idx in prop_oneof![Just(Indexing::None), Just(Indexing::Partial), Just(Indexing::Full)],
        stale in any::<bool>(),
        threads in prop_oneof![Just(0usize), Just(2), Just(5)],
    ) {
        let db_m = build(rows, DbProfile::MySqlLike, idx, stale);
        let db_p = build(rows, DbProfile::PostgresLike, idx, stale);
        let scan = scan_query(&pred);
        let forced = forced_query(&pred);
        let free = SelectQuery::star_from("t").filter(pred);

        // Oracle: single-threaded sequential scan (hints honoured on M).
        let mut reference = db_m.run_query(&scan).unwrap().rows;
        reference.sort();

        let opts = ExecOptions::with_threads(threads);
        for (db, q, label) in [
            (&db_m, &scan, "parallel scan (M)"),
            (&db_m, &forced, "forced union (M)"),
            (&db_m, &free, "planner choice (M)"),
            (&db_p, &free, "planner choice (P)"),
            (&db_p, &scan, "hints ignored (P)"),
        ] {
            let mut got = db.run_query_opts(q, &opts).unwrap().rows;
            got.sort();
            prop_assert_eq!(&got, &reference, "{} diverged (threads={})", label, threads);
        }
    }

    /// The same equivalence holds through the `SqlBackend` seam: the
    /// in-process backend and the wire backend (render → wire → re-parse)
    /// both honour the thread knob and return oracle-identical rows.
    #[test]
    fn backends_agree_under_thread_knob(
        pred in arb_guard_pred(),
        rows in 1_000i64..2 * PARALLEL_MIN_ROWS as i64,
        threads in prop_oneof![Just(0usize), Just(4)],
    ) {
        let db = build(rows, DbProfile::MySqlLike, Indexing::Full, false);
        let scan = scan_query(&pred);
        let forced = forced_query(&pred);
        let mut reference = db.run_query(&scan).unwrap().rows;
        reference.sort();

        let opts = ExecOptions::with_threads(threads);
        #[cfg_attr(not(feature = "wire-sql"), allow(unused_mut))]
        let mut backends: Vec<(&'static str, Box<dyn SqlBackend>)> =
            vec![("minidb", Box::new(MinidbBackend::new(db.clone())))];
        #[cfg(feature = "wire-sql")]
        backends.push(("wire-sql", Box::new(WireSqlBackend::new(db.clone()))));
        for q in [&scan, &forced] {
            for (name, backend) in &backends {
                let mut got = backend.exec(q, &opts).unwrap().rows;
                got.sort();
                prop_assert_eq!(&got, &reference, "backend {} diverged", name);
            }
        }
    }
}
