//! End-to-end property test: on a random database and random policy
//! corpus, **every** enforcement mechanism returns exactly the oracle's
//! row set (sound and secure, Section 3.1), for random queriers and
//! purposes — including queriers with zero policies (default deny).

use proptest::prelude::*;
use sieve::core::baselines::Baseline;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::semantics::visible_rows;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, SelectQuery, TableSchema};

#[derive(Debug, Clone)]
struct Corpus {
    policies: Vec<(i64, Option<i64>, i64, u8, u8)>, // owner, group-target, user-target, purpose, shape
    rows: i64,
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    (
        proptest::collection::vec(
            (0i64..15, proptest::option::of(0i64..3), 0i64..4, 0u8..3, 0u8..4),
            0..25,
        ),
        400i64..1200,
    )
        .prop_map(|(policies, rows)| Corpus { policies, rows })
}

fn build(corpus: &Corpus, profile: DbProfile) -> Sieve {
    let mut db = Database::new(profile);
    db.create_table(TableSchema::of(
        "t",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..corpus.rows {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::Int(i % 15),
                Value::Int(1000 + i % 5),
                Value::Time(((i * 401) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index("t", col).unwrap();
    }
    db.analyze("t").unwrap();
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    // The relation is access-controlled even when the corpus is empty
    // (default deny must hold with zero policies).
    sieve.protect("t");
    // Queriers 100..104; querier 100 is in groups 0 and 1.
    sieve.groups_mut().add_member(0, 100);
    sieve.groups_mut().add_member(1, 100);
    sieve.groups_mut().add_member(2, 101);
    for (owner, group, user, purpose, shape) in &corpus.policies {
        let querier = match group {
            Some(g) => QuerierSpec::Group(*g),
            None => QuerierSpec::User(100 + user),
        };
        let purpose = ["Any", "Analytics", "Safety"][*purpose as usize];
        let cond = match shape {
            0 => vec![ObjectCondition::new(
                "wifi_ap",
                CondPredicate::Eq(Value::Int(1000 + (owner % 5))),
            )],
            1 => vec![ObjectCondition::new(
                "ts_time",
                CondPredicate::between(
                    Value::Time(((owner % 10) * 7000) as u32),
                    Value::Time((((owner % 10) * 7000) + 20_000).min(86_399) as u32),
                ),
            )],
            2 => vec![
                ObjectCondition::new(
                    "wifi_ap",
                    CondPredicate::NotIn(vec![Value::Int(1004)]),
                ),
                ObjectCondition::new(
                    "ts_time",
                    CondPredicate::ge(Value::Time(4 * 3600)),
                ),
            ],
            _ => vec![],
        };
        sieve
            .add_policy(Policy::new(*owner, "t", querier, purpose, cond))
            .unwrap();
    }
    sieve
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn enforcement_equals_oracle(
        corpus in arb_corpus(),
        querier in 100i64..105,
        purpose_idx in 0usize..3,
        profile_pg in any::<bool>(),
    ) {
        let profile = if profile_pg { DbProfile::PostgresLike } else { DbProfile::MySqlLike };
        let mut sieve = build(&corpus, profile);
        let purpose = ["Analytics", "Safety", "Marketing"][purpose_idx];
        let qm = QueryMetadata::new(querier, purpose);
        let policies = sieve.policies();
        let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
            policies.iter(), "t", &qm, &sieve.groups(),
        );
        let mut expect = visible_rows(&*sieve.db(), "t", &relevant).unwrap();
        expect.sort();
        let q = SelectQuery::star_from("t");
        for e in [
            Enforcement::Sieve,
            Enforcement::Baseline(Baseline::P),
            Enforcement::Baseline(Baseline::I),
            Enforcement::Baseline(Baseline::U),
        ] {
            let (res, _) = sieve.run_timed(e, &q, &qm);
            let mut got = res.expect("must run").rows;
            got.sort();
            prop_assert_eq!(&got, &expect, "{:?} diverged on {:?}", e, profile);
        }
    }
}
