//! Property tests over the engine substrate: whatever access path the
//! planner picks (forced unions, bitmap ORs, sequential scans), the rows
//! that come back are identical — and histogram estimates stay sane.

use proptest::prelude::*;
use sieve::minidb::expr::{CmpOp, ColumnRef, Expr};
use sieve::minidb::plan::{IndexHint, TableRef};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, RangeBound, SelectQuery, TableSchema};

fn build(rows: i64, profile: DbProfile) -> Database {
    let mut db = Database::new(profile);
    db.create_table(TableSchema::of(
        "t",
        &[
            ("id", DataType::Int),
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::Int(i % 23),
                Value::Int(i % 7),
                Value::Time(((i * 557) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    db.create_index("t", "a").unwrap();
    db.create_index("t", "b").unwrap();
    db.create_index("t", "c").unwrap();
    db.analyze("t").unwrap();
    db
}

/// A random predicate whose leaves are all sargable (so forced index
/// plans are possible) over columns a, b, c.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..23).prop_map(|v| Expr::col_eq(ColumnRef::bare("a"), Value::Int(v))),
        (0i64..7).prop_map(|v| Expr::col_eq(ColumnRef::bare("b"), Value::Int(v))),
        (0u32..20, 1u32..8).prop_map(|(s, l)| Expr::Between {
            expr: Box::new(Expr::Column(ColumnRef::bare("c"))),
            low: Box::new(Expr::Literal(Value::Time(s * 3600))),
            high: Box::new(Expr::Literal(Value::Time(((s + l) * 3600).min(86_399)))),
            negated: false,
        }),
        (0i64..23, 0i64..23).prop_map(|(x, y)| Expr::InList {
            expr: Box::new(Expr::Column(ColumnRef::bare("a"))),
            list: vec![Expr::Literal(Value::Int(x)), Expr::Literal(Value::Int(y))],
            negated: false,
        }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            proptest::collection::vec(inner, 2..3).prop_map(Expr::And),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_access_paths_agree(pred in arb_pred(), rows in 500i64..2500) {
        // Reference: IgnoreAll hint forces a sequential scan on MySqlLike.
        let db_m = build(rows, DbProfile::MySqlLike);
        let db_p = build(rows, DbProfile::PostgresLike);
        let scan = SelectQuery {
            from: vec![TableRef::named("t").with_hint(IndexHint::IgnoreAll)],
            ..SelectQuery::star_from("t")
        }
        .filter(pred.clone());
        let forced = SelectQuery {
            from: vec![TableRef::named("t").with_hint(IndexHint::Force(vec![
                "a".into(),
                "b".into(),
                "c".into(),
            ]))],
            ..SelectQuery::star_from("t")
        }
        .filter(pred.clone());
        let free = SelectQuery::star_from("t").filter(pred);

        let mut reference = db_m.run_query(&scan).unwrap().rows;
        reference.sort();
        for (db, q, label) in [
            (&db_m, &forced, "forced union (M)"),
            (&db_m, &free, "planner choice (M)"),
            (&db_p, &free, "planner choice (P)"),
            (&db_p, &scan, "hints ignored (P)"),
        ] {
            let mut got = db.run_query(q).unwrap().rows;
            got.sort();
            prop_assert_eq!(&got, &reference, "{} diverged", label);
        }
    }

    #[test]
    fn histogram_estimates_bounded_and_monotone(
        rows in 200i64..3000,
        point in 0i64..23,
        lo in 0u32..12,
        width in 1u32..12,
    ) {
        let db = build(rows, DbProfile::MySqlLike);
        let entry = db.table("t").unwrap();
        let h = entry.histogram("a").unwrap();
        // Equality estimates are bounded by the total.
        let est = h.estimate_eq(&Value::Int(point));
        prop_assert!(est >= 0.0 && est <= rows as f64);
        // Range estimates grow with the range.
        let hc = entry.histogram("c").unwrap();
        let narrow = hc.estimate_range(
            &RangeBound::Inclusive(Value::Time(lo * 3600)),
            &RangeBound::Inclusive(Value::Time((lo + width) * 3600)),
        );
        let wide = hc.estimate_range(
            &RangeBound::Inclusive(Value::Time(lo * 3600)),
            &RangeBound::Inclusive(Value::Time(((lo + width) * 3600 + 7200).min(86_399))),
        );
        prop_assert!(wide + 1e-9 >= narrow, "wide {wide} < narrow {narrow}");
        prop_assert!(wide <= rows as f64 + 1e-9);
    }

    #[test]
    fn explain_estimates_track_actual_cardinality(v in 0i64..23) {
        // For an equality on a uniformly distributed column the planner's
        // estimate must be within a small factor of the true count.
        let db = build(2300, DbProfile::MySqlLike);
        let pred = Expr::col_cmp(ColumnRef::bare("a"), CmpOp::Eq, Value::Int(v));
        let q = SelectQuery::star_from("t").filter(pred);
        let explain = db.explain(&q).unwrap();
        let est = explain.relations[0].est_rows;
        let actual = db.run_query(&q).unwrap().len() as f64;
        prop_assert!(actual > 0.0);
        let ratio = (est / actual).max(actual / est);
        prop_assert!(ratio < 4.0, "estimate {est} vs actual {actual}");
    }
}
