//! Property tests over the guard machinery (DESIGN.md §7):
//!
//! 1. **Exactly-once cover**: Algorithm 1 partitions the policy set —
//!    every policy appears in exactly one guard partition.
//! 2. **Rewrite equivalence**: for random policy sets and tuples,
//!    `eval(G(P), t) == eval(E(P), t)` — the guarded expression accepts
//!    exactly the tuples the plain policy DNF accepts.
//! 3. **Theorem 1 invariant**: candidate guards never merge disjoint
//!    ranges.

use proptest::prelude::*;
use sieve::core::cost::CostModel;
use sieve::core::guard::{
    candidates::generate_candidates, generate_guarded_expression, GuardSelectionStrategy,
};
use sieve::core::policy::{CondPredicate, ObjectCondition, Policy, PolicyId, QuerierSpec};
use sieve::core::semantics::{eval_condition, eval_policies};
use sieve::minidb::value::{DataType, Value};
use sieve::minidb::{Database, DbProfile, TableSchema};
use std::collections::{BTreeSet, HashMap};

fn test_db(rows: i64, owners: i64) -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        "wifi_dataset",
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert(
            "wifi_dataset",
            vec![
                Value::Int(i),
                Value::Int(i % owners),
                Value::Int(1000 + i % 8),
                Value::Time(((i * 379) % 86_400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index("wifi_dataset", col).unwrap();
    }
    db.analyze("wifi_dataset").unwrap();
    db
}

/// Strategy producing a random object condition over the schema.
fn arb_condition() -> impl Strategy<Value = ObjectCondition> {
    prop_oneof![
        (1000i64..1008).prop_map(|ap| ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(ap))
        )),
        (0u32..20, 1u32..6).prop_map(|(start_h, len_h)| {
            let lo = start_h * 3600;
            let hi = ((start_h + len_h) * 3600).min(86_399);
            ObjectCondition::new(
                "ts_time",
                CondPredicate::between(Value::Time(lo), Value::Time(hi)),
            )
        }),
        proptest::collection::vec(1000i64..1008, 1..4).prop_map(|aps| ObjectCondition::new(
            "wifi_ap",
            CondPredicate::In(aps.into_iter().map(Value::Int).collect())
        )),
    ]
}

fn arb_policy(owners: i64) -> impl Strategy<Value = Policy> {
    (
        0..owners,
        proptest::collection::vec(arb_condition(), 0..3),
    )
        .prop_map(|(owner, conds)| {
            Policy::new(owner, "wifi_dataset", QuerierSpec::User(1), "Any", conds)
        })
}

fn with_ids(mut policies: Vec<Policy>) -> Vec<Policy> {
    for (i, p) in policies.iter_mut().enumerate() {
        p.id = i as PolicyId + 1;
    }
    policies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn guards_cover_every_policy_exactly_once(
        policies in proptest::collection::vec(arb_policy(12), 1..40)
    ) {
        let db = test_db(1500, 12);
        let entry = db.table("wifi_dataset").unwrap();
        let policies = with_ids(policies);
        let refs: Vec<&Policy> = policies.iter().collect();
        for strategy in [GuardSelectionStrategy::CostOptimal, GuardSelectionStrategy::OwnerOnly] {
            let ge = generate_guarded_expression(
                &refs, entry, &CostModel::default(), strategy, 1, "Any", "wifi_dataset",
            );
            let mut seen: BTreeSet<PolicyId> = BTreeSet::new();
            for g in &ge.guards {
                for pid in &g.policies {
                    prop_assert!(seen.insert(*pid), "policy {pid} in two partitions ({strategy:?})");
                }
            }
            let all: BTreeSet<PolicyId> = policies.iter().map(|p| p.id).collect();
            prop_assert_eq!(seen, all, "cover mismatch ({:?})", strategy);
        }
    }

    #[test]
    fn guarded_expression_equivalent_to_policy_dnf(
        policies in proptest::collection::vec(arb_policy(12), 1..30)
    ) {
        let db = test_db(1500, 12);
        let entry = db.table("wifi_dataset").unwrap();
        let schema = entry.schema();
        let policies = with_ids(policies);
        let refs: Vec<&Policy> = policies.iter().collect();
        let ge = generate_guarded_expression(
            &refs, entry, &CostModel::default(),
            GuardSelectionStrategy::CostOptimal, 1, "Any", "wifi_dataset",
        );
        let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();
        // Check on a sample of stored tuples.
        for row in entry.table.rows().iter().step_by(37) {
            let plain = eval_policies(&refs, schema, row, None).allowed;
            let guarded = ge.guards.iter().any(|g| {
                eval_condition(&g.condition, schema, row, None)
                    && g.policies.iter().any(|pid| {
                        sieve::core::semantics::policy_allows(by_id[pid], schema, row, None)
                    })
            });
            prop_assert_eq!(plain, guarded, "guard filter changed semantics");
        }
    }

    #[test]
    fn merged_candidates_only_from_overlaps(
        policies in proptest::collection::vec(arb_policy(12), 2..25)
    ) {
        // Every candidate's range must contain each member policy's own
        // range condition on that attribute (oc_j ⟹ oc_g), which fails if
        // disjoint ranges were ever merged.
        let db = test_db(1500, 12);
        let entry = db.table("wifi_dataset").unwrap();
        let policies = with_ids(policies);
        let refs: Vec<&Policy> = policies.iter().collect();
        let cands = generate_candidates(&refs, entry, &CostModel::default());
        let by_id: HashMap<PolicyId, &Policy> = policies.iter().map(|p| (p.id, p)).collect();
        for cand in &cands {
            if let CondPredicate::Range { low, high } = &cand.condition.pred {
                let (g_lo, g_hi) = (bound_key(low, true), bound_key(high, false));
                for pid in &cand.policies {
                    // The guard property is existential: SOME range
                    // condition of the policy on this attribute must imply
                    // the guard (`∃ oc_j ∈ OC_l | oc_j ⟹ oc_g`, §3.2). A
                    // policy may carry several ranges on the attribute;
                    // any one inside the guard suffices.
                    let mut ranges = Vec::new();
                    for oc in by_id[pid].object_conditions() {
                        if oc.attr == cand.condition.attr {
                            if let CondPredicate::Range { low: plo, high: phi } = &oc.pred {
                                ranges.push((bound_key(plo, true), bound_key(phi, false)));
                            }
                        }
                    }
                    if !ranges.is_empty() {
                        prop_assert!(
                            ranges.iter().any(|(p_lo, p_hi)| g_lo <= *p_lo && *p_hi <= g_hi),
                            "guard [{g_lo},{g_hi}] implied by none of {ranges:?}"
                        );
                    }
                }
            }
        }
    }
}

fn bound_key(b: &sieve::minidb::RangeBound, is_low: bool) -> f64 {
    match b {
        sieve::minidb::RangeBound::Unbounded => {
            if is_low {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }
        sieve::minidb::RangeBound::Inclusive(v) | sieve::minidb::RangeBound::Exclusive(v) => {
            v.numeric_key().unwrap_or(0.0)
        }
    }
}
