//! Wire-protocol fidelity: every frame a peer can legally send must
//! round-trip encode→decode *exactly*, and everything else — truncated
//! payloads, trailing bytes, unknown tags, oversized frames — must be
//! rejected, never partially decoded. The server and client stand on
//! this: a lossy or lenient codec would let enforcement decisions drift
//! between the in-process and remote paths.

use proptest::collection::vec;
use proptest::prelude::*;
use sieve::minidb::{QueryResult, Value};
use sieve::protocol::codec::{read_result, write_result, Reader, Writer};
use sieve::protocol::error::ErrorCode;
use sieve::protocol::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use sieve::protocol::{ClientMessage, ProtocolError, ServerMessage, WireError, PROTOCOL_VERSION};
use sieve::core::policy::QueryMetadata;

// ------------------------------------------------------------ strategies

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9_ ]{0,12}".prop_map(Value::str),
        (0u32..86_400).prop_map(Value::Time),
        any::<i32>().prop_map(Value::Date),
        // Finite doubles only: NaN breaks `PartialEq`-based round-trip
        // comparison, not the codec (bit patterns always survive).
        any::<i64>().prop_map(|i| Value::Double(i as f64 / 256.0)),
    ]
}

fn arb_metadata() -> impl Strategy<Value = QueryMetadata> {
    (
        any::<i64>(),
        "[a-zA-Z]{0,10}",
        vec(("[a-z_]{1,8}", arb_value()), 0..4),
    )
        .prop_map(|(querier, purpose, context)| QueryMetadata {
            querier,
            purpose,
            context,
        })
}

fn arb_result() -> impl Strategy<Value = QueryResult> {
    (
        vec("[a-z_]{1,10}", 0..5),
        vec(vec(arb_value(), 0..5), 0..6),
    )
        .prop_map(|(columns, rows)| QueryResult { columns, rows })
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (0usize..ErrorCode::ALL.len()).prop_map(|i| ErrorCode::ALL[i])
}

fn arb_client_message() -> impl Strategy<Value = ClientMessage> {
    prop_oneof![
        any::<u32>().prop_map(|version| ClientMessage::Hello { version }),
        "[a-zA-Z0-9]{0,16}".prop_map(|token| ClientMessage::Auth { token }),
        (arb_metadata(), "[a-zA-Z0-9 *=<>_,.]{0,40}")
            .prop_map(|(metadata, sql)| ClientMessage::Execute { metadata, sql }),
        (arb_metadata(), "[a-zA-Z0-9 *=<>_,.]{0,40}")
            .prop_map(|(metadata, sql)| ClientMessage::Prepare { metadata, sql }),
        any::<u64>().prop_map(|statement| ClientMessage::ExecutePrepared { statement }),
        any::<u64>().prop_map(|statement| ClientMessage::ClosePrepared { statement }),
        Just(ClientMessage::Goodbye),
    ]
}

fn arb_server_message() -> impl Strategy<Value = ServerMessage> {
    prop_oneof![
        any::<u32>().prop_map(|version| ServerMessage::HelloAck { version }),
        any::<i64>().prop_map(|querier| ServerMessage::AuthAck { querier }),
        arb_result().prop_map(ServerMessage::Rows),
        any::<u64>().prop_map(|statement| ServerMessage::Prepared { statement }),
        any::<u64>().prop_map(|statement| ServerMessage::Closed { statement }),
        (arb_error_code(), "[a-zA-Z0-9 ]{0,30}")
            .prop_map(|(code, message)| ServerMessage::Error(WireError { code, message })),
        Just(ServerMessage::Goodbye),
    ]
}

// ------------------------------------------------------- round-trip laws

proptest! {
    /// Every client message round-trips exactly through its payload
    /// encoding AND through the framed stream.
    #[test]
    fn client_message_round_trips(msg in arb_client_message()) {
        let payload = msg.encode();
        prop_assert_eq!(&ClientMessage::decode(&payload).unwrap(), &msg);
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        let mut cursor = &stream[..];
        prop_assert_eq!(
            &ClientMessage::decode(&read_frame(&mut cursor).unwrap()).unwrap(),
            &msg
        );
    }

    /// Every server message round-trips exactly, rows included.
    #[test]
    fn server_message_round_trips(msg in arb_server_message()) {
        let payload = msg.encode();
        prop_assert_eq!(&ServerMessage::decode(&payload).unwrap(), &msg);
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        let mut cursor = &stream[..];
        prop_assert_eq!(
            &ServerMessage::decode(&read_frame(&mut cursor).unwrap()).unwrap(),
            &msg
        );
    }

    /// Query results (the bulk payload) survive the codec row-for-row.
    #[test]
    fn query_result_round_trips(res in arb_result()) {
        let mut w = Writer::new();
        write_result(&mut w, &res);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_result(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back.columns, res.columns);
        prop_assert_eq!(back.rows, res.rows);
    }

    /// Chopping ANY strict prefix off a valid payload must fail decode —
    /// there is no prefix of a message that silently decodes to less.
    #[test]
    fn truncated_payloads_rejected(msg in arb_client_message(), cut in 1usize..64) {
        let payload = msg.encode();
        if cut <= payload.len() {
            let truncated = &payload[..payload.len() - cut];
            prop_assert!(ClientMessage::decode(truncated).is_err());
        }
    }

    /// Appending garbage after a valid message must fail decode: a frame
    /// is exactly one message.
    #[test]
    fn trailing_bytes_rejected(msg in arb_server_message(), extra in vec(any::<u8>(), 1..16)) {
        let mut payload = msg.encode();
        payload.extend_from_slice(&extra);
        prop_assert!(matches!(
            ServerMessage::decode(&payload),
            Err(ProtocolError::TrailingBytes { .. })
        ));
    }

    /// Unknown message tags are rejected, whatever follows them.
    #[test]
    fn unknown_tags_rejected(tag in 8u8..255, body in vec(any::<u8>(), 0..32)) {
        let mut payload = vec![tag];
        payload.extend_from_slice(&body);
        prop_assert!(matches!(
            ClientMessage::decode(&payload),
            Err(ProtocolError::UnknownTag { .. })
        ));
        prop_assert!(matches!(
            ServerMessage::decode(&payload),
            Err(ProtocolError::UnknownTag { .. })
        ));
    }

    /// Error codes survive the wire byte-exactly.
    #[test]
    fn error_codes_round_trip(code in arb_error_code()) {
        prop_assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
    }
}

// -------------------------------------------------------- framing limits

#[test]
fn oversized_frame_rejected_on_read_and_write() {
    // Write side refuses to emit an oversized frame.
    let big = vec![0u8; MAX_FRAME_LEN as usize + 1];
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &big),
        Err(ProtocolError::Oversized { .. })
    ));
    // Read side rejects a hostile length prefix before allocating.
    let evil = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    let mut cursor = &evil[..];
    assert!(matches!(
        read_frame(&mut cursor),
        Err(ProtocolError::Oversized { .. })
    ));
}

#[test]
fn protocol_version_is_stable() {
    // The handshake constant is part of the wire contract; bumping it is
    // a deliberate act, not a drive-by.
    assert_eq!(PROTOCOL_VERSION, 1);
}

#[test]
fn bool_values_fail_closed_on_noncanonical_bytes() {
    // A Bool cell may only be 0 or 1 on the wire; 2 is rejected, not
    // coerced to true.
    let mut w = Writer::new();
    sieve::protocol::codec::write_value(&mut w, &Value::Bool(true));
    let mut bytes = w.into_bytes();
    assert_eq!(bytes.len(), 2);
    bytes[1] = 2;
    let mut r = Reader::new(&bytes);
    assert!(matches!(
        sieve::protocol::codec::read_value(&mut r),
        Err(ProtocolError::UnknownTag { .. })
    ));
}
