//! Property test: the SQL renderer and parser are inverse —
//! `parse(render(q)) == q` for randomly generated queries covering the
//! whole supported subset (DESIGN.md §7, criterion 5).

use proptest::prelude::*;
use sieve::minidb::expr::{CmpOp, ColumnRef, Expr};
use sieve::minidb::plan::{
    AggFunc, IndexHint, SelectItem, SelectQuery, TableRef, TableSource,
};
use sieve::minidb::sql::{parse, render_query};
use sieve::minidb::Value;

const KEYWORDS: [&str; 28] = [
    "select", "from", "where", "group", "by", "and", "or", "not", "in", "between", "is",
    "null", "true", "false", "as", "force", "use", "index", "limit", "with", "time",
    "date", "count", "sum", "min", "max", "avg", "distinct",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s.to_ascii_lowercase().as_str())
}

/// The parser always produces flattened And/Or trees (its `Expr::and`/`or`
/// builders flatten); normalize arbitrary ASTs the same way before
/// comparing.
fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::And(v) => {
            let mut parts = Vec::new();
            for p in v {
                match normalize(p) {
                    Expr::And(mut inner) => parts.append(&mut inner),
                    other => parts.push(other),
                }
            }
            if parts.len() == 1 { parts.pop().unwrap() } else { Expr::And(parts) }
        }
        Expr::Or(v) => {
            let mut parts = Vec::new();
            for p in v {
                match normalize(p) {
                    Expr::Or(mut inner) => parts.append(&mut inner),
                    other => parts.push(other),
                }
            }
            if parts.len() == 1 { parts.pop().unwrap() } else { Expr::Or(parts) }
        }
        Expr::Not(x) => Expr::Not(Box::new(normalize(x))),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(normalize(lhs)),
            rhs: Box::new(normalize(rhs)),
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(normalize(expr)),
            low: Box::new(normalize(low)),
            high: Box::new(normalize(high)),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(normalize(expr)),
            list: list.iter().map(normalize).collect(),
            negated: *negated,
        },
        other => other.clone(),
    }
}

fn normalize_query(q: &SelectQuery) -> SelectQuery {
    let mut q = q.clone();
    q.predicate = q.predicate.as_ref().map(normalize);
    q
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (0u32..86_400).prop_map(Value::Time),
        (0i32..40_000).prop_map(Value::Date),
        "[a-z]{1,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_column() -> impl Strategy<Value = ColumnRef> {
    prop_oneof![
        "[a-z_][a-z0-9_]{0,6}".prop_map(ColumnRef::bare),
        ("[a-z]{1,4}", "[a-z_][a-z0-9_]{0,6}")
            .prop_map(|(t, c)| ColumnRef::qualified(t, c)),
    ]
    .prop_filter("avoid keywords", |c| {
        !is_keyword(&c.column) && !c.table.as_deref().map(is_keyword).unwrap_or(false)
    })
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (arb_column(), arb_cmp_op(), arb_value()).prop_map(|(c, op, v)| Expr::Cmp {
            op,
            lhs: Box::new(Expr::Column(c)),
            rhs: Box::new(Expr::Literal(v)),
        }),
        (arb_column(), arb_value(), arb_value(), any::<bool>()).prop_map(
            |(c, a, b, negated)| Expr::Between {
                expr: Box::new(Expr::Column(c)),
                low: Box::new(Expr::Literal(a)),
                high: Box::new(Expr::Literal(b)),
                negated,
            }
        ),
        (
            arb_column(),
            proptest::collection::vec(arb_value(), 1..4),
            any::<bool>()
        )
            .prop_map(|(c, vs, negated)| Expr::InList {
                expr: Box::new(Expr::Column(c)),
                list: vs.into_iter().map(Expr::Literal).collect(),
                negated,
            }),
        (arb_column(), any::<bool>()).prop_map(|(c, negated)| Expr::IsNull {
            expr: Box::new(Expr::Column(c)),
            negated,
        }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (
        "[a-z][a-z0-9_]{0,8}",
        proptest::option::of(arb_expr()),
        proptest::option::of(1usize..100),
        prop_oneof![
            Just(IndexHint::None),
            Just(IndexHint::IgnoreAll),
            proptest::collection::vec(
                "[a-z][a-z0-9_]{0,6}"
                    .prop_map(String::from)
                    .prop_filter("hint col not keyword", |s| !is_keyword(s)),
                1..3
            )
            .prop_map(IndexHint::Force),
        ],
        any::<bool>(),
    )
        .prop_filter("table not keyword", |(t, ..)| !is_keyword(t))
        .prop_map(|(table, predicate, limit, hint, agg)| {
            let select = if agg {
                vec![SelectItem::Aggregate {
                    func: AggFunc::Count,
                    column: None,
                    alias: Some("n".into()),
                }]
            } else {
                vec![SelectItem::Star]
            };
            SelectQuery {
                with: vec![],
                select,
                from: vec![TableRef {
                    source: TableSource::Named(table.clone()),
                    alias: table,
                    hint,
                }],
                predicate,
                group_by: vec![],
                limit,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_render_roundtrip(q in arb_query()) {
        let sql = render_query(&q);
        let reparsed = parse(&sql)
            .unwrap_or_else(|e| panic!("could not reparse {sql:?}: {e}"));
        prop_assert_eq!(reparsed, normalize_query(&q), "roundtrip mismatch for SQL: {}", sql);
    }

    #[test]
    fn rendered_expr_roundtrips(e in arb_expr()) {
        let sql = format!("SELECT * FROM t WHERE {}", sieve::minidb::sql::render_expr(&e));
        let reparsed = parse(&sql)
            .unwrap_or_else(|err| panic!("could not reparse {sql:?}: {err}"));
        prop_assert_eq!(
            reparsed.predicate.unwrap(),
            normalize(&e),
            "expr mismatch for SQL: {}",
            sql
        );
    }
}
