//! Render fidelity of **rewritten** queries — the property the wire-SQL
//! backend stands on.
//!
//! `minidb::sql` already round-trips hand-written queries; with
//! `WireSqlBackend` in the tree, every guard-CTE-bearing rewrite the
//! middleware emits must ALSO survive `parse(render_query(..))` exactly,
//! or the wire backend silently executes a different query than the
//! in-process one. This suite drives the real rewriter over random
//! policy corpora (nested/merged guards, inline DNFs and ∆ calls, hint
//! lists from every access strategy) and random query shapes (nesting,
//! CTE shadowing, user CTEs that force collision-renamed guard names)
//! and asserts AST-exact round trips.

use proptest::prelude::*;
use sieve::core::cost::AccessStrategy;
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::rewrite::DeltaMode;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::expr::{CmpOp, ColumnRef, Expr};
use sieve::minidb::plan::{IndexHint, SelectItem, TableRef, TableSource};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, SelectQuery, TableSchema, Value};

const REL: &str = "wifi_dataset";

fn loaded_db() -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
            ("signal", DataType::Double),
        ],
    ))
    .unwrap();
    for i in 0..600i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 30),
                Value::Int(1000 + i % 8),
                Value::Time(((i * 131) % 86400) as u32),
                // Fractional and negative doubles: the literals that used
                // to lose their type (or their sign's meaning) in render.
                Value::Double((i % 97) as f64 * 0.25 - 12.0),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time", "signal"] {
        db.create_index(REL, col).unwrap();
    }
    db.create_table(TableSchema::of(
        "boards",
        &[("k", DataType::Int), ("label", DataType::Int)],
    ))
    .unwrap();
    for k in 0..16i64 {
        db.insert("boards", vec![Value::Int(k), Value::Int(k % 3)]).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

/// One random policy: equality, IN-list, or time-range condition — the
/// shapes the guard compiler turns into DNF branches or ∆ partitions.
#[derive(Debug, Clone)]
enum CondShape {
    ApEq(i64),
    ApIn(Vec<i64>),
    TimeRange(u32, u32),
    /// `signal BETWEEN lo AND hi` with fractional, possibly negative
    /// double endpoints — the literal class whose render used to drop the
    /// decimal point on the wire.
    SignalRange(f64, f64),
    Unconditional,
}

fn arb_policy() -> impl Strategy<Value = (i64, CondShape)> {
    let shape = prop_oneof![
        (0i64..8).prop_map(|a| CondShape::ApEq(1000 + a)),
        proptest::collection::vec(0i64..8, 1..4)
            .prop_map(|aps| CondShape::ApIn(aps.into_iter().map(|a| 1000 + a).collect())),
        (0u32..12, 12u32..24).prop_map(|(lo, hi)| CondShape::TimeRange(lo * 3600, hi * 3600)),
        (0i64..48, 0i64..48).prop_map(|(a, b)| {
            let lo = a as f64 * 0.25 - 12.0;
            CondShape::SignalRange(lo, lo + b as f64 * 0.25)
        }),
        Just(CondShape::Unconditional),
    ];
    (0i64..30, shape)
}

fn to_policy(owner: i64, shape: &CondShape) -> Policy {
    let conds = match shape {
        CondShape::ApEq(ap) => vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(*ap)),
        )],
        CondShape::ApIn(aps) => vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::In(aps.iter().map(|a| Value::Int(*a)).collect()),
        )],
        CondShape::TimeRange(lo, hi) => vec![ObjectCondition::new(
            "ts_time",
            CondPredicate::between(Value::Time(*lo), Value::Time(*hi)),
        )],
        CondShape::SignalRange(lo, hi) => vec![ObjectCondition::new(
            "signal",
            CondPredicate::between(Value::Double(*lo), Value::Double(*hi)),
        )],
        CondShape::Unconditional => vec![],
    };
    Policy::new(owner, REL, QuerierSpec::User(500), "Analytics", conds)
}

/// Random query shape over the protected relation: optional predicate,
/// 0..3 nesting wraps (derived / fresh CTE / shadowing CTE), optional
/// scalar subquery, optional user CTE named like the default guard CTE
/// (forces the collision-renamer).
#[derive(Debug, Clone)]
struct Shape {
    ap_filter: bool,
    /// `signal >= -3.5`-style predicate: a negative double literal in the
    /// *query* (not just the policies).
    signal_filter: bool,
    wraps: Vec<u8>,
    scalar_pred: bool,
    collide_guard_name: bool,
    /// 0 = `SELECT *`; 1..=6 pick an aggregate select list (COUNT(*),
    /// COUNT(col), COUNT(DISTINCT col), SUM, MIN/MAX, AVG) — every
    /// aggregate render shape crosses the wire.
    agg: u8,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(0u8..3, 0..3),
        any::<bool>(),
        any::<bool>(),
        0u8..7,
    )
        .prop_map(
            |(ap_filter, signal_filter, wraps, scalar_pred, collide_guard_name, agg)| Shape {
                ap_filter,
                signal_filter,
                wraps,
                scalar_pred,
                collide_guard_name,
                agg,
            },
        )
}

fn build_query(s: &Shape) -> SelectQuery {
    let mut q = SelectQuery::star_from(REL);
    if s.ap_filter {
        q = q.filter(Expr::col_eq(
            ColumnRef::qualified(REL, "wifi_ap"),
            Value::Int(1001),
        ));
    }
    if s.signal_filter {
        q = q.and_filter(Expr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(Expr::Column(ColumnRef::qualified(REL, "signal"))),
            rhs: Box::new(Expr::Literal(Value::Double(-3.5))),
        });
    }
    for (i, w) in s.wraps.iter().enumerate() {
        q = match w {
            0 => SelectQuery {
                with: vec![],
                select: vec![SelectItem::Star],
                from: vec![TableRef {
                    source: TableSource::Derived(Box::new(q)),
                    alias: format!("d{i}"),
                    hint: IndexHint::None,
                }],
                predicate: None,
                group_by: vec![],
                limit: None,
            },
            1 => SelectQuery::star_from(format!("v{i}")).with_clause(format!("v{i}"), q),
            _ => SelectQuery::star_from(REL).with_clause(REL, q),
        };
    }
    if s.scalar_pred {
        let count = SelectQuery {
            select: vec![SelectItem::Aggregate {
                func: sieve::minidb::plan::AggFunc::Count,
                column: None,
                alias: Some("n".into()),
            }],
            ..SelectQuery::star_from(REL)
        };
        q = q.and_filter(Expr::Cmp {
            op: CmpOp::Le,
            lhs: Box::new(Expr::Column(ColumnRef::bare("id"))),
            rhs: Box::new(Expr::ScalarSubquery(Box::new(count))),
        });
    }
    if s.collide_guard_name {
        // A user CTE squatting on the guard CTE's default name: the
        // rewriter must rename to `wifi_dataset_sieve2`, and THAT must
        // round-trip too.
        q = q.with_clause(format!("{REL}_sieve"), SelectQuery::star_from("boards"));
    }
    if s.agg > 0 {
        use sieve::minidb::plan::AggFunc;
        let (func, column) = match s.agg {
            1 => (AggFunc::Count, None),
            2 => (AggFunc::Count, Some(ColumnRef::bare("id"))),
            3 => (AggFunc::CountDistinct, Some(ColumnRef::bare("wifi_ap"))),
            4 => (AggFunc::Sum, Some(ColumnRef::bare("signal"))),
            5 => (AggFunc::Min, Some(ColumnRef::bare("signal"))),
            _ => (AggFunc::Avg, Some(ColumnRef::bare("signal"))),
        };
        q.select = vec![SelectItem::Aggregate {
            func,
            column,
            alias: Some("agg".into()),
        }];
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// parse(render(rewrite(q))) == rewrite(q), across random corpora,
    /// delta modes, and forced strategies (hint-list coverage: FORCE
    /// INDEX over guard attrs, FORCE INDEX over the query probe,
    /// USE INDEX () for linear scans).
    #[test]
    fn rewritten_queries_render_parse_roundtrip(
        policies in proptest::collection::vec(arb_policy(), 1..16),
        shape in arb_shape(),
        delta_mode in prop_oneof![
            Just(DeltaMode::Auto),
            Just(DeltaMode::Never),
            Just(DeltaMode::Always)
        ],
        forced in prop_oneof![
            Just(None),
            Just(Some(AccessStrategy::IndexGuards)),
            Just(Some(AccessStrategy::IndexQuery)),
            Just(Some(AccessStrategy::LinearScan))
        ],
    ) {
        let mut options = SieveOptions::default();
        options.rewrite.delta_mode = delta_mode;
        options.rewrite.forced_strategy = forced;
        let mut sieve = Sieve::new(loaded_db(), options).unwrap();
        for (owner, shape) in &policies {
            sieve.add_policy(to_policy(*owner, shape)).unwrap();
        }
        let q = build_query(&shape);
        let qm = QueryMetadata::new(500, "Analytics");
        let out = sieve.rewrite(&q, &qm).expect("rewrite");
        prop_assert!(
            !out.relations.is_empty(),
            "query must exercise at least one guard CTE"
        );
        let sql = sieve::minidb::sql::render_query(&out.query);
        let reparsed = sieve::minidb::sql::parse(&sql)
            .unwrap_or_else(|e| panic!("rendered rewrite failed to parse: {e}\nSQL: {sql}"));
        prop_assert_eq!(
            &reparsed, &out.query,
            "render/parse round trip diverged.\nSQL: {}", sql
        );
        // The prepared-statement path: lift every literal into a `?`
        // placeholder, ship the template, re-bind server-side. The bound
        // AST must be the original rewrite exactly, or execute-by-id runs
        // a different query than execute-by-text.
        let (template, params) = sieve::minidb::sql::parameterize(&out.query);
        let template_sql = sieve::minidb::sql::render_query(&template);
        let template_reparsed = sieve::minidb::sql::parse(&template_sql)
            .unwrap_or_else(|e| panic!("template failed to parse: {e}\nSQL: {template_sql}"));
        let rebound = sieve::minidb::sql::bind_params(&template_reparsed, &params)
            .expect("binding the lifted literals back");
        prop_assert_eq!(
            &rebound, &out.query,
            "parameterize/bind round trip diverged.\ntemplate: {}", template_sql
        );
        // The reparsed AST must also *execute* identically — textual
        // equality of plans is what the wire backend's results stand on.
        let a = sieve.db().run_query(&out.query).expect("direct exec").rows;
        let b = sieve.db().run_query(&reparsed).expect("reparsed exec").rows;
        prop_assert_eq!(a, b);
    }
}
