//! End-to-end client → protocol → server → service enforcement.
//!
//! The contract under test: a remote session speaking frames over the
//! loopback transport must be **indistinguishable** from an in-process
//! [`sieve::core::Session`] — row-identical results on every backend,
//! the same typed error taxonomy, and the same fail-closed posture. On
//! top of that, the server's own perimeter must hold: requests whose
//! embedded querier disagrees with the connection's authenticated
//! identity are refused, unauthenticated requests never reach the
//! service, and malformed frames kill the connection instead of being
//! half-parsed.

use sieve::client::{ClientError, RemoteConnection};
use sieve::core::backend::{
    for_each_backend, FaultConfig, FaultInjectingBackend, MinidbBackend,
};
use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::{Sieve, SieveOptions, SieveService};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, Row, TableSchema, Value};
use sieve::protocol::frame::{read_frame, write_frame};
use sieve::protocol::{
    ClientMessage, ErrorCode, ProtocolError, ServerMessage, PROTOCOL_VERSION,
};
use sieve::server::{loopback, SieveServer, TokenAuthenticator};
use std::io::Write;
use std::sync::Arc;

const REL: &str = "wifi_dataset";
const QUERIERS: [i64; 4] = [500, 501, 502, 503];
const QUERY: &str = "SELECT * FROM wifi_dataset";

fn policy(owner: i64, querier: i64, purpose: &str, ap: i64) -> Policy {
    Policy::new(
        owner,
        REL,
        QuerierSpec::User(querier),
        purpose,
        vec![ObjectCondition::new(
            "wifi_ap",
            CondPredicate::Eq(Value::Int(ap)),
        )],
    )
}

fn loaded_db() -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
            ("ts_time", DataType::Time),
        ],
    ))
    .unwrap();
    for i in 0..2000i64 {
        db.insert(
            REL,
            vec![
                Value::Int(i),
                Value::Int(i % 80),
                Value::Int(1000 + i % 10),
                Value::Time(((i * 53) % 86400) as u32),
            ],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap", "ts_time"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

/// Querier 500+k reads owners 0..20 at AP 1001+k.
fn register_corpus(add: &mut dyn FnMut(Policy)) {
    for (k, &querier) in QUERIERS.iter().enumerate() {
        for owner in 0..20i64 {
            add(policy(owner, querier, "Analytics", 1001 + k as i64));
        }
    }
}

/// Token table covering the corpus queriers: "token-<id>" → id.
fn authenticator() -> TokenAuthenticator {
    let mut auth = TokenAuthenticator::new();
    for &q in &QUERIERS {
        auth.insert(format!("token-{q}"), q);
    }
    auth
}

fn sorted_rows(res: sieve::minidb::QueryResult) -> Vec<Row> {
    let mut rows = res.rows;
    rows.sort();
    rows
}

fn qm(querier: i64) -> QueryMetadata {
    QueryMetadata::new(querier, "Analytics")
}

// ---------------------------------------------------------------------
// Row identity against the in-process oracle
// ---------------------------------------------------------------------

/// Remote sessions over loopback return exactly the rows the in-process
/// session API returns, on every backend, from many concurrent
/// connections, for both the one-shot and the prepared path.
#[test]
fn remote_sessions_row_identical_to_in_process_oracle() {
    for_each_backend(&loaded_db(), &SieveOptions::default(), |name, sieve| {
        let mut sieve = sieve;
        register_corpus(&mut |p| {
            sieve.add_policy(p).unwrap();
        });
        let service = sieve.into_service();

        // In-process oracle rows, per querier, before the storm.
        let oracles: Vec<(i64, Vec<Row>)> = QUERIERS
            .iter()
            .map(|&u| {
                let rows =
                    sorted_rows(service.session(qm(u)).execute_sql(QUERY).unwrap());
                assert!(!rows.is_empty(), "{name}: oracle empty for querier {u}");
                (u, rows)
            })
            .collect();

        let server = SieveServer::new(service, authenticator());
        let (listener, connector) = loopback();
        let handle = server.serve(listener);

        std::thread::scope(|scope| {
            for round in 0..2 {
                for (u, expect) in &oracles {
                    let (u, expect) = (*u, expect.clone());
                    let connector = connector.clone();
                    scope.spawn(move || {
                        let conn = RemoteConnection::establish(
                            connector.connect().unwrap(),
                            &format!("token-{u}"),
                        )
                        .unwrap();
                        assert_eq!(conn.querier(), u);
                        let session = conn.session(qm(u));
                        // One-shot path.
                        for _ in 0..3 {
                            let rows =
                                sorted_rows(session.execute_sql(QUERY).unwrap());
                            assert_eq!(rows, expect, "round {round} querier {u}");
                        }
                        // Prepared path: pin once, execute repeatedly.
                        let prepared = session.prepare_sql(QUERY).unwrap();
                        for _ in 0..3 {
                            let rows = sorted_rows(prepared.execute().unwrap());
                            assert_eq!(rows, expect, "prepared querier {u}");
                        }
                        prepared.close().unwrap();
                        conn.close().unwrap();
                    });
                }
            }
        });

        drop(connector);
        handle.join();
        let stats = server.stats();
        assert_eq!(
            stats.identity_rejections.load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    });
}

/// Under a seeded fault schedule (drops, evictions, transients) the
/// remote path keeps the in-process contract: every `Ok` is
/// row-identical to the no-fault oracle, every `Err` is a typed wire
/// error — never a protocol error, never raw rows.
#[test]
fn remote_results_row_identical_under_fault_injection() {
    let mut sieve = Sieve::with_backend(
        FaultInjectingBackend::new(
            MinidbBackend::new(loaded_db()),
            FaultConfig::seeded(42, 0.3),
        ),
        SieveOptions::default(),
    )
    .unwrap();
    register_corpus(&mut |p| {
        sieve.add_policy(p).unwrap();
    });
    let service = sieve.into_service();

    // Oracle with injection off.
    service.backend().set_enabled(false);
    let oracles: Vec<(i64, Vec<Row>)> = QUERIERS
        .iter()
        .map(|&u| (u, sorted_rows(service.session(qm(u)).execute_sql(QUERY).unwrap())))
        .collect();
    service.backend().set_enabled(true);

    let server = SieveServer::new(service, authenticator());
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    let oks = Arc::new(std::sync::atomic::AtomicU64::new(0));
    std::thread::scope(|scope| {
        for (u, expect) in &oracles {
            let (u, expect) = (*u, expect.clone());
            let connector = connector.clone();
            let oks = Arc::clone(&oks);
            scope.spawn(move || {
                let conn = RemoteConnection::establish(
                    connector.connect().unwrap(),
                    &format!("token-{u}"),
                )
                .unwrap();
                let session = conn.session(qm(u));
                for _ in 0..12 {
                    match session.execute_sql(QUERY) {
                        Ok(res) => {
                            assert_eq!(sorted_rows(res), expect, "querier {u}");
                            oks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        // Fail closed is allowed; it must arrive as a
                        // *typed* remote error, not a protocol break.
                        Err(ClientError::Remote(e)) => {
                            assert!(
                                matches!(
                                    e.code,
                                    ErrorCode::BackendConnectionLost
                                        | ErrorCode::BackendTimeout
                                        | ErrorCode::BackendUnknownStatement
                                        | ErrorCode::BackendTransient
                                        | ErrorCode::BackendFatal
                                        | ErrorCode::RetriesExhausted
                                ),
                                "unexpected wire error {e}"
                            );
                        }
                        Err(ClientError::Protocol(e)) => {
                            panic!("protocol error under faults: {e}")
                        }
                    }
                }
                conn.close().unwrap();
            });
        }
    });
    assert!(
        oks.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "retry loop absorbed nothing — no query ever succeeded"
    );
    drop(connector);
    handle.join();
}

/// A prepared remote statement stays correct across a policy change: the
/// server-side plan re-prepares transparently and the next execute
/// returns the post-change oracle rows.
#[test]
fn remote_prepared_follows_policy_changes() {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    register_corpus(&mut |p| {
        service.add_policy(p).unwrap();
    });
    let server = SieveServer::new(service.clone(), authenticator());
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    let conn =
        RemoteConnection::establish(connector.connect().unwrap(), "token-500").unwrap();
    let session = conn.session(qm(500));
    let prepared = session.prepare_sql(QUERY).unwrap();
    let before = sorted_rows(prepared.execute().unwrap());

    // Widen querier 500's visibility: owner 5's rows all sit at AP 1005
    // (i ≡ 5 mod 80 ⇒ ap = 1005), invisible under the corpus's AP-1001
    // grant, so this policy strictly grows the row set.
    service.add_policy(policy(5, 500, "Analytics", 1005)).unwrap();
    let expect = sorted_rows(service.session(qm(500)).execute_sql(QUERY).unwrap());
    assert_ne!(before, expect, "policy change must alter visibility");

    let after = sorted_rows(prepared.execute().unwrap());
    assert_eq!(after, expect, "stale remote plan must re-prepare");

    prepared.close().unwrap();
    conn.close().unwrap();
    drop(connector);
    handle.join();
}

// ---------------------------------------------------------------------
// Perimeter: identity, auth, protocol violations
// ---------------------------------------------------------------------

/// The bypass attempt this server exists to stop: authenticate as one
/// querier, embed another querier's identity in the request metadata.
/// The server must refuse with `IdentityMismatch` — the request never
/// reaches the service — and the connection stays usable for honest
/// requests.
#[test]
fn embedded_querier_mismatch_is_rejected_fail_closed() {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    register_corpus(&mut |p| {
        service.add_policy(p).unwrap();
    });
    let expect_own =
        sorted_rows(service.session(qm(500)).execute_sql(QUERY).unwrap());
    let server = SieveServer::new(service, authenticator());
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    let conn =
        RemoteConnection::establish(connector.connect().unwrap(), "token-500").unwrap();

    // Execute under a foreign identity: refused, typed.
    let foreign = conn.session(qm(501));
    match foreign.execute_sql(QUERY) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::IdentityMismatch),
        other => panic!("expected IdentityMismatch, got {other:?}"),
    }
    // Prepare under a foreign identity: same refusal.
    match foreign.prepare_sql(QUERY) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::IdentityMismatch),
        Err(other) => panic!("expected IdentityMismatch, got {other}"),
        Ok(_) => panic!("foreign prepare must be refused"),
    }

    // The connection survives and honest requests still work.
    let own = conn.session(qm(500));
    assert_eq!(sorted_rows(own.execute_sql(QUERY).unwrap()), expect_own);

    conn.close().unwrap();
    drop(connector);
    let stats = server.stats();
    handle.join();
    assert_eq!(
        stats.identity_rejections.load(std::sync::atomic::Ordering::Relaxed),
        2
    );
}

/// A bad token is refused with `AuthFailed` and the connection closes.
#[test]
fn unknown_token_rejected() {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    let server = SieveServer::new(service, authenticator());
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    match RemoteConnection::establish(connector.connect().unwrap(), "not-a-token") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::AuthFailed),
        other => panic!("expected AuthFailed, got {:?}", other.is_ok()),
    }
    drop(connector);
    handle.join();
}

/// Raw-frame checks: requests before auth are refused and close the
/// connection; a version mismatch is refused at Hello; garbage frames
/// produce a Protocol error then EOF. (Driven below the client library,
/// which cannot be coaxed into sending these.)
#[test]
fn protocol_perimeter_holds_on_raw_frames() {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    let server = SieveServer::new(service, authenticator());
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    // Execute before Auth → NotAuthenticated, then the server hangs up.
    {
        let mut conn = connector.connect().unwrap();
        write_frame(&mut conn, &ClientMessage::Hello { version: PROTOCOL_VERSION }.encode())
            .unwrap();
        let ack = ServerMessage::decode(&read_frame(&mut conn).unwrap()).unwrap();
        assert!(matches!(ack, ServerMessage::HelloAck { .. }));
        write_frame(
            &mut conn,
            &ClientMessage::Execute { metadata: qm(500), sql: QUERY.to_string() }.encode(),
        )
        .unwrap();
        match ServerMessage::decode(&read_frame(&mut conn).unwrap()).unwrap() {
            ServerMessage::Error(e) => assert_eq!(e.code, ErrorCode::NotAuthenticated),
            other => panic!("expected NotAuthenticated, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut conn),
            Err(ProtocolError::ConnectionClosed)
        ));
    }

    // Version mismatch → Protocol error, close.
    {
        let mut conn = connector.connect().unwrap();
        write_frame(&mut conn, &ClientMessage::Hello { version: 99 }.encode()).unwrap();
        match ServerMessage::decode(&read_frame(&mut conn).unwrap()).unwrap() {
            ServerMessage::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("expected Protocol error, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut conn),
            Err(ProtocolError::ConnectionClosed)
        ));
    }

    // Garbage payload → Protocol error, close.
    {
        let mut conn = connector.connect().unwrap();
        write_frame(&mut conn, &[0xFF, 0xFE, 0xFD]).unwrap();
        match ServerMessage::decode(&read_frame(&mut conn).unwrap()).unwrap() {
            ServerMessage::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("expected Protocol error, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut conn),
            Err(ProtocolError::ConnectionClosed)
        ));
    }

    // A frame that is not even a frame: raw bytes shorter than a length
    // prefix, then hang up. The server must just drop the connection.
    {
        let mut conn = connector.connect().unwrap();
        conn.write_all(&[1, 2]).unwrap();
    }

    drop(connector);
    handle.join();
}

/// Executing or closing a statement handle the server never issued is a
/// typed refusal, not a panic or a silent no-op.
#[test]
fn unknown_statement_handle_rejected() {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    register_corpus(&mut |p| {
        service.add_policy(p).unwrap();
    });
    let server = SieveServer::new(service, authenticator());
    let (listener, connector) = loopback();
    let handle = server.serve(listener);

    let mut conn = connector.connect().unwrap();
    write_frame(&mut conn, &ClientMessage::Hello { version: PROTOCOL_VERSION }.encode())
        .unwrap();
    read_frame(&mut conn).unwrap();
    write_frame(&mut conn, &ClientMessage::Auth { token: "token-500".into() }.encode())
        .unwrap();
    read_frame(&mut conn).unwrap();
    write_frame(&mut conn, &ClientMessage::ExecutePrepared { statement: 9999 }.encode())
        .unwrap();
    match ServerMessage::decode(&read_frame(&mut conn).unwrap()).unwrap() {
        ServerMessage::Error(e) => assert_eq!(e.code, ErrorCode::UnknownStatementHandle),
        other => panic!("expected UnknownStatementHandle, got {other:?}"),
    }
    write_frame(&mut conn, &ClientMessage::ClosePrepared { statement: 9999 }.encode())
        .unwrap();
    match ServerMessage::decode(&read_frame(&mut conn).unwrap()).unwrap() {
        ServerMessage::Error(e) => assert_eq!(e.code, ErrorCode::UnknownStatementHandle),
        other => panic!("expected UnknownStatementHandle, got {other:?}"),
    }
    drop(conn);
    drop(connector);
    handle.join();
}
