//! Single-flight guard generation under a cold-miss stampede.
//!
//! The contract: K threads cold-missing the SAME (querier, purpose,
//! relation) key simultaneously must produce exactly ONE guard
//! generation — one thread builds, the rest block on the in-flight claim
//! and reuse the published entry — with every thread's rows identical to
//! the single-threaded oracle. Distinct keys must NOT serialize behind
//! one another's claims.

use sieve::core::policy::{
    CondPredicate, ObjectCondition, Policy, QuerierSpec, QueryMetadata,
};
use sieve::core::{SieveOptions, SieveService};
use sieve::minidb::value::DataType;
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, TableSchema, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

const REL: &str = "wifi_dataset";
const QUERIERS: [i64; 4] = [500, 501, 502, 503];

fn loaded_db() -> Database {
    let mut db = Database::new(DbProfile::MySqlLike);
    db.create_table(TableSchema::of(
        REL,
        &[
            ("id", DataType::Int),
            ("owner", DataType::Int),
            ("wifi_ap", DataType::Int),
        ],
    ))
    .unwrap();
    for i in 0..3000i64 {
        db.insert(
            REL,
            vec![Value::Int(i), Value::Int(i % 80), Value::Int(1000 + i % 10)],
        )
        .unwrap();
    }
    for col in ["owner", "wifi_ap"] {
        db.create_index(REL, col).unwrap();
    }
    db.analyze(REL).unwrap();
    db
}

fn loaded_service() -> SieveService {
    let service = SieveService::new(loaded_db(), SieveOptions::default()).unwrap();
    for (k, &querier) in QUERIERS.iter().enumerate() {
        for owner in 0..30i64 {
            service
                .add_policy(Policy::new(
                    owner,
                    REL,
                    QuerierSpec::User(querier),
                    "Analytics",
                    vec![ObjectCondition::new(
                        "wifi_ap",
                        CondPredicate::Eq(Value::Int(1001 + k as i64)),
                    )],
                ))
                .unwrap();
        }
    }
    service
}

fn sorted_rows(res: sieve::minidb::QueryResult) -> Vec<Row> {
    let mut rows = res.rows;
    rows.sort();
    rows
}

/// K threads, one barrier, one cold key: exactly one generation fires,
/// all K results are row-identical, and the coalesced counter shows the
/// waiters actually took the single-flight path.
#[test]
fn cold_miss_stampede_generates_exactly_once() {
    const K: usize = 16;
    let service = loaded_service();
    let qm = QueryMetadata::new(500, "Analytics");
    let q = SelectQuery::star_from(REL);

    // Oracle from a throwaway service (leaves the test service cold).
    let expect = sorted_rows(
        loaded_service().session(qm.clone()).execute_sql("SELECT * FROM wifi_dataset").unwrap(),
    );
    assert!(!expect.is_empty());

    let before = service.generations();
    assert_eq!(before, 0, "cache must be cold before the stampede");
    let barrier = Arc::new(Barrier::new(K));
    let mismatches = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for _ in 0..K {
            let service = service.clone();
            let qm = qm.clone();
            let q = q.clone();
            let barrier = Arc::clone(&barrier);
            let expect = expect.clone();
            let mismatches = Arc::clone(&mismatches);
            scope.spawn(move || {
                barrier.wait();
                let rows = sorted_rows(service.execute(&q, &qm).unwrap());
                if rows != expect {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(mismatches.load(Ordering::Relaxed), 0, "row drift in stampede");
    assert_eq!(
        service.generations() - before,
        1,
        "a K-thread cold-miss stampede must cost exactly one generation"
    );
    // Exactly one cold miss (the builder's publish); every other thread
    // lands a warm hit after waiting — threads that parked on the
    // in-flight claim additionally show up in `coalesced`.
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "stampede must cost one cold miss");
    assert_eq!(stats.hits as usize, K - 1, "non-builders must all end as hits");
    assert!(
        (stats.coalesced as usize) < K,
        "coalesced {} exceeds possible waiters",
        stats.coalesced
    );
}

/// Distinct keys do not serialize: stampedes on all four queriers at
/// once still cost exactly one generation *per key*.
#[test]
fn distinct_keys_generate_independently() {
    const PER_KEY: usize = 6;
    let service = loaded_service();
    let q = SelectQuery::star_from(REL);
    assert_eq!(service.generations(), 0);
    let barrier = Arc::new(Barrier::new(PER_KEY * QUERIERS.len()));

    std::thread::scope(|scope| {
        for &u in &QUERIERS {
            for _ in 0..PER_KEY {
                let service = service.clone();
                let q = q.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    service
                        .execute(&q, &QueryMetadata::new(u, "Analytics"))
                        .unwrap();
                });
            }
        }
    });

    assert_eq!(
        service.generations() as usize,
        QUERIERS.len(),
        "one generation per distinct cold key, no more"
    );
}
