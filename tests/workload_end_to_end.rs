//! End-to-end over the generated workloads: the full campus pipeline
//! (TIPPERS data → policy corpus → Q1/Q2/Q3 queries → SIEVE + baselines)
//! agrees with the oracle; the mall pipeline enforces shop policies.

use sieve::core::baselines::Baseline;
use sieve::core::middleware::Enforcement;
use sieve::core::policy::{Policy, QueryMetadata};
use sieve::core::semantics::visible_rows;
use sieve::core::{Sieve, SieveOptions};
use sieve::minidb::{Database, DbProfile, Row, SelectQuery, Value};
use sieve::workload::mall::{generate as generate_mall, MallConfig, MallDataset};
use sieve::workload::policy_gen::{generate_policies, PolicyGenConfig};
use sieve::workload::query_gen::generate_query;
use sieve::workload::tippers::{generate as generate_tippers, TippersConfig};
use sieve::workload::{QueryClass, Selectivity, UserProfile, MALL_TABLE, WIFI_TABLE};

fn campus(profile: DbProfile) -> (Sieve, sieve::workload::TippersDataset) {
    let mut db = Database::new(profile);
    let ds = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 99,
            scale: 0.004,
            days: 30,
        },
    )
    .unwrap();
    let policies = generate_policies(&ds, &PolicyGenConfig::default());
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    *sieve.groups_mut() = ds.groups.clone();
    sieve.add_policies(policies).unwrap();
    (sieve, ds)
}

fn oracle_for(
    sieve: &Sieve,
    table: &str,
    qm: &QueryMetadata,
) -> Vec<Row> {
    let policies = sieve.policies();
    let relevant: Vec<&Policy> = sieve::core::filter::relevant_policies(
        policies.iter(),
        table,
        qm,
        &sieve.groups(),
    );
    visible_rows(&*sieve.db(), table, &relevant).unwrap()
}

#[test]
fn campus_q1_q2_match_oracle_under_all_mechanisms() {
    let (mut sieve, ds) = campus(DbProfile::MySqlLike);
    let faculty = ds.devices_of(UserProfile::Faculty).next().unwrap().id;
    let qm = QueryMetadata::new(faculty, "Analytics");
    let oracle = oracle_for(&sieve, WIFI_TABLE, &qm);
    assert!(!oracle.is_empty(), "faculty must see something");

    for class in [QueryClass::Q1, QueryClass::Q2] {
        for sel in [Selectivity::Low, Selectivity::Mid] {
            let q = generate_query(&ds, class, sel, 7);
            // Reference: filter oracle rows by the query predicate, which
            // the unpoliced engine computes for us.
            let (raw, _) = sieve.run_timed(Enforcement::NoPolicies, &q, &qm);
            let raw_rows = raw.unwrap().rows;
            let mut expect: Vec<Row> = raw_rows
                .into_iter()
                .filter(|r| oracle.contains(r))
                .collect();
            expect.sort();
            for e in [
                Enforcement::Sieve,
                Enforcement::Baseline(Baseline::P),
                Enforcement::Baseline(Baseline::I),
                Enforcement::Baseline(Baseline::U),
            ] {
                let (res, _) = sieve.run_timed(e, &q, &qm);
                let mut got = res.unwrap().rows;
                got.sort();
                assert_eq!(got, expect, "{class:?}/{sel:?} {e:?} diverged");
            }
        }
    }
}

#[test]
fn campus_q3_aggregate_consistent() {
    let (mut sieve, ds) = campus(DbProfile::PostgresLike);
    let grad = ds.devices_of(UserProfile::Grad).next().unwrap().id;
    let qm = QueryMetadata::new(grad, "Analytics");
    let q = generate_query(&ds, QueryClass::Q3, Selectivity::High, 3);
    let (sieve_res, _) = sieve.run_timed(Enforcement::Sieve, &q, &qm);
    let (base_res, _) = sieve.run_timed(Enforcement::Baseline(Baseline::P), &q, &qm);
    assert_eq!(
        sieve_res.unwrap().rows,
        base_res.unwrap().rows,
        "Q3 aggregate must agree between SIEVE and BaselineP"
    );
}

#[test]
fn visitors_see_almost_nothing_faculty_see_more() {
    let (mut sieve, ds) = campus(DbProfile::MySqlLike);
    let q = SelectQuery::star_from(WIFI_TABLE);
    let faculty = ds.devices_of(UserProfile::Faculty).next().unwrap().id;
    let visitor = ds.devices_of(UserProfile::Visitor).next().unwrap().id;
    let f_rows = sieve
        .execute(&q, &QueryMetadata::new(faculty, "Analytics"))
        .unwrap()
        .len();
    let v_rows = sieve
        .execute(&q, &QueryMetadata::new(visitor, "Analytics"))
        .unwrap()
        .len();
    assert!(
        f_rows > v_rows,
        "faculty ({f_rows}) should out-see visitors ({v_rows})"
    );
}

#[test]
fn mall_shops_see_only_granted_rows() {
    let mut db = Database::new(DbProfile::PostgresLike);
    let ds = generate_mall(
        &mut db,
        &MallConfig {
            seed: 21,
            scale: 0.02,
            shops: 35,
            days: 30,
        },
    )
    .unwrap();
    let mut sieve = Sieve::new(db, SieveOptions::default()).unwrap();
    *sieve.groups_mut() = ds.groups.clone();
    sieve.add_policies(ds.policies.iter().cloned()).unwrap();

    let q = SelectQuery::star_from(MALL_TABLE);
    let shop = ds.shops[0];
    let qm = QueryMetadata::new(MallDataset::shop_querier(shop), "Sales");
    let mut got = sieve.execute(&q, &qm).unwrap().rows;
    got.sort();
    let mut expect = oracle_for(&sieve, MALL_TABLE, &qm);
    expect.sort();
    assert_eq!(got, expect);

    // A random non-shop querier is denied.
    let stranger = QueryMetadata::new(4_242, "Sales");
    assert!(sieve.execute(&q, &stranger).unwrap().is_empty());
}

#[test]
fn persistence_mirrors_policies_into_relations() {
    let mut db = Database::new(DbProfile::MySqlLike);
    let ds = generate_tippers(
        &mut db,
        &TippersConfig {
            seed: 99,
            scale: 0.002,
            days: 20,
        },
    )
    .unwrap();
    let policies = generate_policies(&ds, &PolicyGenConfig::default());
    let n = policies.len();
    let mut sieve = Sieve::new(
        db,
        SieveOptions {
            persist: true,
            ..Default::default()
        },
    )
    .unwrap();
    *sieve.groups_mut() = ds.groups.clone();
    sieve.add_policies(policies).unwrap();

    // The rP relation is queryable through plain SQL, as in the paper.
    let res = sieve
        .db()
        .run_sql("SELECT COUNT(*) AS n FROM sieve_policies")
        .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(n as i64));

    // Load back and compare against the registered corpus.
    let loaded = sieve::core::store::load_policies(&*sieve.db()).unwrap();
    assert_eq!(loaded.len(), n);
    let registered = sieve.policies();
    for (a, b) in loaded.iter().zip(registered.iter()) {
        assert_eq!(a, b);
    }

    // Executing a query persists the generated guarded expression.
    let faculty = ds.devices_of(UserProfile::Faculty).next().unwrap().id;
    let qm = QueryMetadata::new(faculty, "Analytics");
    sieve
        .execute(&SelectQuery::star_from(WIFI_TABLE), &qm)
        .unwrap();
    let ge = sieve
        .db()
        .run_sql("SELECT COUNT(*) AS n FROM sieve_guard_expressions")
        .unwrap();
    assert!(ge.rows[0][0].as_int().unwrap() >= 1);
}

#[test]
fn batched_execution_equals_sequential_over_campus_traffic() {
    // The tentpole's correctness bar: prepare_batch/execute_batch over a
    // multi-querier traffic batch returns row-for-row what per-request
    // execute returns, while generating each (querier, purpose, relation)
    // expression exactly once through the shared phase.
    let (mut sieve, ds) = campus(DbProfile::MySqlLike);
    let requests = sieve::workload::traffic::multi_querier_traffic(
        &ds,
        &sieve::workload::TrafficConfig {
            queriers: 40,
            purpose: "Analytics".into(),
            seed: 3,
        },
    );
    assert_eq!(requests.len(), 40);

    // Sequential reference on a cold cache.
    sieve.invalidate_all();
    let seq_gens_before = sieve.generations();
    let mut sequential: Vec<Vec<Row>> = Vec::with_capacity(requests.len());
    for (qm, q) in &requests {
        let mut rows = sieve.execute(q, qm).unwrap().rows;
        rows.sort();
        sequential.push(rows);
    }
    let seq_generations = sieve.generations() - seq_gens_before;

    // Batched run on a cold cache.
    sieve.invalidate_all();
    let gens_before = sieve.generations();
    let results = sieve.execute_batch(&requests).unwrap();
    assert_eq!(results.len(), requests.len());
    for (got, expect) in results.into_iter().zip(&sequential) {
        let mut rows = got.rows;
        rows.sort();
        assert_eq!(&rows, expect, "batched result diverged from sequential");
    }
    assert_eq!(
        sieve.generations() - gens_before,
        seq_generations,
        "batch must generate exactly once per key"
    );
    // Re-running the same batch is fully warm: nothing regenerates.
    let gens = sieve.generations();
    sieve.execute_batch(&requests).unwrap();
    assert_eq!(sieve.generations(), gens);
}
