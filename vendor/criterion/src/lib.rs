//! Offline shim for the `criterion` crate.
//!
//! The build environment has no access to a cargo registry, so this
//! in-tree crate provides a minimal Criterion-compatible harness:
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`, and the
//! `criterion_group!` / `criterion_main!` macros. Benchmarks run a
//! fixed number of timed samples (one warm-up plus `sample_size`
//! measured iterations per sample batch) and print median / mean
//! timings to stdout — no plots, no statistics beyond that. The point
//! is that `cargo bench` compiles and runs, with rough timings, in an
//! environment where the real crate is unavailable.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter component.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// An id carrying only a parameter component.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &mut b.samples);
        self
    }

    /// Benchmarks `f` under `id` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &mut b.samples);
        self
    }

    fn report(&self, id: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        println!(
            "{}/{id}: median {} mean {} ({} samples)",
            self.name,
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no time budget.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Benchmarks `f` under `name` without a group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let group = BenchmarkGroup {
            name: "bench".into(),
            criterion: self,
        };
        group.report(name, &mut b.samples);
        self
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}
