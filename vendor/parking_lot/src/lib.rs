//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to a cargo registry, so this
//! in-tree crate provides the small slice of the `parking_lot` API the
//! workspace uses — `Mutex` and `RwLock` whose lock methods return
//! guards directly (no poisoning) — implemented over `std::sync`.
//! Poisoned locks are recovered transparently, matching parking_lot's
//! poison-free semantics.

use std::sync;

/// A mutual-exclusion primitive; `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock; `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
