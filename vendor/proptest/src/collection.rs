//! Collection strategies (shim: `vec` only).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s of values from an element strategy, with
/// length drawn uniformly from a half-open range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty vec length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with length in `len` (half-open, like proptest's
/// `SizeRange` from a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
