//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to a cargo registry, so this
//! in-tree crate implements the slice of the proptest API the test
//! suite uses: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_filter` and `prop_recursive`; strategies for integer ranges,
//! tuples, `Just`, `any::<T>()`, regex-subset string literals,
//! [`collection::vec`] and [`option::of`]; and the `proptest!`,
//! `prop_oneof!`, `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case prints the generated inputs
//!   (`Debug`) and the case number, then repanics. Cases are
//!   deterministic per (test name, case index), so failures reproduce.
//! * **Case cap.** `ProptestConfig::with_cases(n)` is clamped to
//!   [`test_runner::MAX_CASES`] (64) so `cargo test -q` stays within CI
//!   time; the `PROPTEST_CASES` environment variable overrides the
//!   count exactly when set.
//! * **String strategies** support the regex subset the suite uses:
//!   literal chars, `[...]` classes with ranges, and `{n}` / `{m,n}` /
//!   `?` / `*` / `+` quantifiers.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(...)]` inner attribute followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __cases = __config.resolved_cases();
                let __fn_seed = $crate::test_runner::fn_seed(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __fn_seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut __inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let __value =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(::std::format!(
                            "{} = {:?}", stringify!($pat), &__value
                        ));
                        let $pat = __value;
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        ::std::eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:\n  {}",
                            stringify!($name), __case + 1, __cases, __inputs.join("\n  ")
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}
