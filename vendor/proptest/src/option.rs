//! Option strategies (shim: `of` only).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Probability that [`of`] produces `Some`, chosen to exercise both
/// variants while favouring the interesting one.
const SOME_PROBABILITY: f64 = 0.75;

/// Strategy producing `Option`s of values from an inner strategy.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < SOME_PROBABILITY {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Option` strategy over `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
