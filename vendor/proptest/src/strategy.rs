//! The [`Strategy`] trait and the combinators the test suite uses.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// How many redraws a `prop_filter` may burn before giving up.
const FILTER_MAX_REDRAWS: usize = 10_000;

/// A generator of random values of one type (shim for proptest's trait
/// of the same name; generation only, no shrinking).
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Debug,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `f`, redrawing until one passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `self` generates leaves and `recurse`
    /// wraps a strategy for subtrees into one for branches. `depth`
    /// bounds nesting; the size hints are accepted for API
    /// compatibility (each level picks leaf or branch 50/50, which
    /// keeps trees small at the suite's depths).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        strat
    }
}

// ---------------------------------------------------------------- boxed

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

// ----------------------------------------------------------- combinators

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_REDRAWS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected {FILTER_MAX_REDRAWS} consecutive draws: {}", self.whence);
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be nonempty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------- arbitrary

/// Types with a canonical whole-domain strategy (shim: the handful the
/// suite touches).
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}
impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

// ---------------------------------------------------------------- string

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}
