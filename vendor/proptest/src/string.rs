//! String generation from the regex subset the suite uses: literal
//! characters, `[...]` classes with ranges, and `{n}` / `{m,n}` / `?` /
//! `*` / `+` quantifiers. Patterns are anchored (whole-string), as in
//! real proptest.

use crate::test_runner::TestRng;

/// Longest expansion chosen for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug)]
struct Atom {
    /// The characters this atom may produce.
    choices: Vec<char>,
    /// Inclusive repetition bounds.
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            // `lo` was already pushed as a single char;
                            // extend with the rest of the range.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(u).unwrap());
                            }
                        }
                        Some(ch) => {
                            let ch = if ch == '\\' {
                                chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in {pattern:?}")
                                })
                            } else {
                                ch
                            };
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                vec![esc]
            }
            other => vec![other],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: u32 = lo.trim().parse().expect("bad quantifier");
                        let hi: u32 = hi.trim().parse().expect("bad quantifier");
                        (lo, hi)
                    }
                    None => {
                        let n: u32 = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Generates a string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = atom.min + (rng.below((atom.max - atom.min + 1) as u64) as u32);
        for _ in 0..count {
            out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_ranges_and_quantifier() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate("[a-z_][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad length: {s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_');
            for c in cs {
                assert!(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            }
        }
    }

    #[test]
    fn exact_count() {
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            let s = generate("[a-z]{3}", &mut rng);
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::new(3);
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
