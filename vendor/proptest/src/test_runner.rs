//! Deterministic RNG and per-test configuration for the shim runner.

/// Upper bound on cases per property, so `cargo test -q` stays inside
/// CI time even when a test asks for more (the real crate's default of
/// 256 is far beyond what the end-to-end oracles need). `PROPTEST_CASES`
/// overrides the resolved count exactly.
pub const MAX_CASES: u32 = 64;

/// SplitMix64 generator driving all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a test's full path, used as its base seed so every
/// property test has a stable, distinct case sequence.
pub fn fn_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-`proptest!` block configuration (subset of the real struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Requested number of cases (clamped to [`MAX_CASES`] unless the
    /// `PROPTEST_CASES` environment variable overrides it).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: MAX_CASES }
    }
}

impl ProptestConfig {
    /// Configuration running (up to) `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The number of cases actually run: the `PROPTEST_CASES`
    /// environment variable when set, else `min(self.cases, MAX_CASES)`.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.parse::<u32>() {
                Ok(n) => n.max(1),
                Err(_) => self.cases.clamp(1, MAX_CASES),
            },
            Err(_) => self.cases.clamp(1, MAX_CASES),
        }
    }
}
