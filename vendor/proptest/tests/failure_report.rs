//! Exercises the shim's failure path: a failing property repanics
//! after printing the generated inputs, and passing properties drive
//! every parameter kind the workspace suite uses.

use proptest::prelude::*;

// `proptest!` emits plain functions when no `#[test]` attribute is
// given; wrap them so the failure path itself can be asserted on.
proptest! {
    fn always_fails(v in 0i64..10) {
        prop_assert!(v < 0, "deliberately impossible: {v}");
    }

    fn mixed_params_hold(
        n in 1usize..5,
        flag in any::<bool>(),
        name in "[a-z]{1,6}",
        pair in (0u32..10, proptest::option::of(0i64..3)),
        items in proptest::collection::vec(0u8..4, 1..6),
    ) {
        prop_assert!((1..5).contains(&n));
        let _ = flag;
        prop_assert!(!name.is_empty() && name.len() <= 6);
        prop_assert!(pair.0 < 10);
        prop_assert!(!items.is_empty() && items.iter().all(|&b| b < 4));
    }
}

#[test]
#[should_panic(expected = "deliberately impossible")]
fn failing_property_repanics_with_inputs() {
    always_fails();
}

#[test]
fn passing_property_covers_all_parameter_kinds() {
    mixed_params_hold();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn config_attribute_accepted(x in 0i64..100, y in 0i64..100) {
        prop_assert_eq!(x + y, y + x);
    }
}
