//! Offline shim for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to a cargo registry, so this
//! in-tree crate provides the slice of the rand 0.8 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` (over `Range`/`RangeInclusive`
//! of the primitive integer types) and `gen_bool`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and plenty
//! for workload synthesis; it makes no cryptographic claims (neither
//! do the generators, which only need reproducibility).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable RNG (subset of rand's trait of the same name).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly from an integer range.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                let draw = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(draw)) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every draw is in range.
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                ((lo as $wide as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Extension methods over [`RngCore`] (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        // 53 high bits → uniform in [0,1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
